"""Resource-manager implementations.

:class:`BaseResourceManager` holds the lifecycle plumbing shared by
the space-sharing RM and the IRIX time-sharing model: the running-job
table, NthLib runtimes, completion callbacks towards the queuing
system, and the state-change notifications that drive the coordinated
admission protocol of §4.3.

:class:`SpaceSharedResourceManager` is the NANOS RM proper: it hosts a
:class:`~repro.rm.base.SchedulingPolicy`, translates its allocation
decisions into machine partitions, and forwards SelfAnalyzer reports
to it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.machine.cpu import CpuHealth
from repro.machine.machine import Machine
from repro.machine.memory import LocalityModel
from repro.metrics.trace import FaultRecord, ReallocationRecord, TraceRecorder
from repro.qs.job import Job
from repro.rm.base import AllocationDecision, JobView, SchedulingPolicy, SystemView
from repro.runtime.nthlib import NthLibRuntime, RuntimeConfig, RuntimeHost
from repro.runtime.selfanalyzer import PerformanceReport
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _no_state_change() -> None:
    """Default ``on_state_change``: no queuing system attached yet."""


def _no_job_finished(job: Job) -> None:
    """Default ``on_job_finished``: no queuing system attached yet."""


def _no_job_killed(job: Job, reason: str) -> None:
    """Default ``on_job_killed``: no queuing system attached yet."""


class BaseResourceManager(RuntimeHost):
    """Common plumbing for both execution models."""

    def __init__(
        self,
        sim: Simulator,
        n_cpus: int,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        runtime_config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.sim = sim
        self.n_cpus = n_cpus
        self.streams = streams
        self.trace = trace
        self.runtime_config = runtime_config or RuntimeConfig()
        self.runtimes: Dict[int, NthLibRuntime] = {}
        self.jobs: Dict[int, Job] = {}
        self.reports: Dict[int, PerformanceReport] = {}
        #: time each job last delivered a report (or was launched);
        #: graceful degradation uses this to detect stale measurements
        self.last_report_time: Dict[int, float] = {}
        self.reallocation_count = 0
        #: optional memory-locality model (space-shared managers only)
        self.locality: Optional[LocalityModel] = None
        #: optional fault-injection tap on incoming SelfAnalyzer
        #: reports; returns the (possibly corrupted) report or ``None``
        #: to drop it.  Installed by :class:`repro.faults.FaultInjector`.
        self.report_filter: Optional[
            Callable[[Job, PerformanceReport], Optional[PerformanceReport]]
        ] = None
        #: invoked after any event that may change admission decisions.
        #: Module-level defaults (not lambdas) keep a freshly built RM
        #: picklable: sessions checkpoint this object graph, and LP
        #: state exchange will ship it between processes.
        self.on_state_change: Callable[[], None] = _no_state_change
        #: invoked with each job that completes
        self.on_job_finished: Callable[[Job], None] = _no_job_finished
        #: invoked with each job torn down by a fault (the queuing
        #: system requeues or fails it)
        self.on_job_killed: Callable[[Job, str], None] = _no_job_killed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def running_count(self) -> int:
        """Number of jobs currently executing."""
        return len(self.jobs)

    @property
    def effective_cpus(self) -> int:
        """CPUs currently usable for scheduling (shrinks under faults)."""
        return self.n_cpus

    def can_admit(self, queued_jobs: int, head_request: Optional[int] = None) -> bool:
        """Whether the queuing system may start one more job.

        ``head_request`` is the processor request of the job at the
        head of the FCFS queue, when the queuing system knows it;
        policies that gate admission on exact fit (batch space
        sharing) use it.
        """
        raise NotImplementedError

    def system_view(self) -> SystemView:
        """Snapshot used by policies and diagnostics."""
        views = {
            job_id: JobView(
                job=job,
                allocation=self._allocation(job_id),
                last_report=self.reports.get(job_id),
            )
            for job_id, job in self.jobs.items()
        }
        return SystemView(self.effective_cpus, views)

    def _allocation(self, job_id: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_job(self, job: Job) -> None:
        """Admit *job*: allocate it and start its runtime."""
        raise NotImplementedError

    def _launch_runtime(self, job: Job) -> None:
        runtime = NthLibRuntime(
            self.sim, job, self, self.streams, self.runtime_config
        )
        self.runtimes[job.job_id] = runtime
        self.jobs[job.job_id] = job
        self.last_report_time[job.job_id] = self.sim.now
        runtime.start()

    def job_completed(self, job: Job) -> None:
        """RuntimeHost hook: the job's last phase finished."""
        job.mark_finished(self.sim.now)
        self._release_job(job)
        self._forget_job(job.job_id)
        self.on_job_finished(job)
        self.on_state_change()

    def kill_job(self, job: Job, reason: str = "") -> None:
        """Tear down a running job after a fault (crash, hang, lost CPUs).

        Aborts the runtime, releases the job's processors, records the
        lost work, and hands the job to the queuing system, which
        requeues it with backoff or declares it FAILED.
        """
        job_id = job.job_id
        if job_id not in self.jobs:
            raise KeyError(f"cannot kill job {job_id}: not running "
                           f"(running: {sorted(self.jobs)})")
        started = job.start_time if job.start_time is not None else self.sim.now
        lost_work = (self.sim.now - started) * self._allocation(job_id)
        self.runtimes[job_id].abort()
        self._release_job(job)
        self._forget_job(job_id)
        self._record_fault("job_kill", job_id, detail=reason, value=lost_work)
        self.on_job_killed(job, reason)
        self.on_state_change()

    def _forget_job(self, job_id: int) -> None:
        del self.jobs[job_id]
        del self.runtimes[job_id]
        self.reports.pop(job_id, None)
        self.last_report_time.pop(job_id, None)

    def _release_job(self, job: Job) -> None:
        raise NotImplementedError

    def finalize(self) -> None:
        """Flush any pending accounting at the end of a run."""

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def _record_fault(self, kind: str, target: int, detail: str = "",
                      value: float = 0.0) -> None:
        if self.trace is not None:
            self.trace.record_fault(
                FaultRecord(self.sim.now, kind, target, detail, value)
            )

    def on_cpu_failed(self, cpu_id: int, permanent: bool = True) -> None:
        """A CPU went offline.  Subclasses shrink capacity/partitions."""
        self._record_fault("cpu_fail", cpu_id,
                           detail="permanent" if permanent else "transient")
        self.on_state_change()

    def on_cpu_repaired(self, cpu_id: int) -> None:
        """A previously failed CPU is usable again."""
        self._record_fault("cpu_repair", cpu_id)
        self.on_state_change()

    def on_node_degraded(self, node: int, factor: float) -> None:
        """A NUMA node slowed down to *factor* of full speed."""
        self._record_fault("node_degrade", node, value=factor)

    def on_node_restored(self, node: int) -> None:
        """A degraded NUMA node recovered full speed."""
        self._record_fault("node_restore", node, value=1.0)

    def _fault_speed_factor(self, job: Job) -> float:
        """Slowdown from degraded hardware (1.0 when healthy)."""
        return 1.0

    # ------------------------------------------------------------------
    # RuntimeHost defaults
    # ------------------------------------------------------------------
    def deliver_report(self, job: Job, report: PerformanceReport) -> None:
        if self.report_filter is not None:
            filtered = self.report_filter(job, report)
            if filtered is None:
                return  # report lost in transit
            report = filtered
        self._accept_report(job, report)

    def _accept_report(self, job: Job, report: PerformanceReport) -> None:
        self.reports[job.job_id] = report
        self.last_report_time[job.job_id] = self.sim.now

    def current_allocation(self, job: Job) -> int:
        return self._allocation(job.job_id)

    def iteration_speed_procs(self, job: Job, nominal_procs: int) -> float:
        return float(nominal_procs)

    def iteration_speedup(self, job: Job, nominal_procs: int) -> float:
        """Execution rate for the next iteration.

        Malleable applications run at their curve's speedup for the
        granted processors.  Rigid applications always run
        ``request`` processes; when the partition is smaller, the
        processes are folded onto it and the rate scales with the
        allocation fraction (paper §6's folding approach for MPI).
        """
        speed_procs = self.iteration_speed_procs(job, nominal_procs)
        if job.spec.malleable:
            speedup = job.spec.speedup_model.speedup(speed_procs)
        else:
            assert job.request is not None
            speedup = job.spec.folded_speedup(job.request, speed_procs)
        if self.locality is not None:
            speedup *= self.locality.speed_factor(job.job_id, self.sim.now)
        fault_factor = self._fault_speed_factor(job)
        if fault_factor != 1.0:
            speedup *= fault_factor
        return speedup


class _LiveSystemView(SystemView):
    """A :class:`SystemView` that reads the RM's books directly.

    The space-shared manager used to rebuild a full snapshot — one
    fresh :class:`JobView` per running job plus an allocation query
    each — on *every* policy activation, which profiling showed was
    ~30% of a whole-workload run.  This subclass instead aliases the
    manager's incrementally-maintained view table, so taking the
    system view is free and the per-view fields are kept current at
    the few places allocations actually change.

    Safe because policies are pure decision makers: they read the
    view only inside the activation call and never retain it (see
    :mod:`repro.rm.base`).
    """

    __slots__ = ("_rm",)

    def __init__(self, rm: "SpaceSharedResourceManager") -> None:
        # deliberately skip SystemView.__init__: both attributes it
        # would set are live properties here
        self._rm = rm

    @property
    def total_cpus(self) -> int:  # type: ignore[override]
        return self._rm.effective_cpus

    @property
    def jobs(self) -> Dict[int, JobView]:  # type: ignore[override]
        return self._rm._views

    @property
    def allocated_cpus(self) -> int:
        # machine partitions correspond 1:1 to viewed jobs at every
        # policy activation, so the machine's O(1) counter equals the
        # sum the base class would compute
        return self._rm.machine.allocated_cpus


class SpaceSharedResourceManager(BaseResourceManager):
    """The NANOS RM: policy-driven exclusive partitions."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        policy: SchedulingPolicy,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        runtime_config: Optional[RuntimeConfig] = None,
        locality: Optional[LocalityModel] = None,
    ) -> None:
        super().__init__(sim, machine.n_cpus, streams, trace, runtime_config)
        self.machine = machine
        self.policy = policy
        self.locality = locality
        #: live JobViews, one per running job, in launch order (the
        #: same iteration order the snapshot dictcomp produced)
        self._views: Dict[int, JobView] = {}
        self._live_view = _LiveSystemView(self)

    # ------------------------------------------------------------------
    # pickling: the view table is derived state
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        del state["_views"]
        del state["_live_view"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._views = {
            job_id: JobView(
                job=job,
                allocation=self.machine.allocation_of(job_id),
                last_report=self.reports.get(job_id),
            )
            for job_id, job in self.jobs.items()
        }
        self._live_view = _LiveSystemView(self)

    # ------------------------------------------------------------------
    # admission (coordination with the queuing system)
    # ------------------------------------------------------------------
    def can_admit(self, queued_jobs: int, head_request: Optional[int] = None) -> bool:
        note = getattr(self.policy, "note_head_request", None)
        if note is not None:
            note(head_request)
        return self.policy.wants_admission(self.system_view(), queued_jobs)

    def system_view(self) -> SystemView:
        """Live view over the incrementally-maintained job table."""
        return self._live_view

    def _allocation(self, job_id: int) -> int:
        return self.machine.allocation_of(job_id)

    def _launch_runtime(self, job: Job) -> None:
        super()._launch_runtime(job)
        self._views[job.job_id] = JobView(
            job=job,
            allocation=self.machine.allocation_of(job.job_id),
            last_report=self.reports.get(job.job_id),
        )

    def _forget_job(self, job_id: int) -> None:
        super()._forget_job(job_id)
        self._views.pop(job_id, None)

    @property
    def effective_cpus(self) -> int:
        """Only healthy CPUs take part in allocation decisions."""
        return self.machine.healthy_cpus

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_job(self, job: Job) -> None:
        job.mark_started(self.sim.now)
        system = self.system_view()
        decision = self.policy.on_job_arrival(job, system)
        self.policy.validate_decision(decision, system, arriving=job)
        initial = decision.pop(job.job_id)
        # Shrink existing partitions first so the newcomer's CPUs are free.
        self._apply(decision)
        self.machine.start_job(job.job_id, job.app_name, initial, self.sim.now)
        if self.locality is not None:
            self.locality.on_job_start(job.job_id, self.sim.now)
        self._record_realloc(job, 0, initial)
        self._launch_runtime(job)
        self.on_state_change()

    def _release_job(self, job: Job) -> None:
        self.machine.finish_job(job.job_id, self.sim.now)
        if self.locality is not None:
            self.locality.on_job_finish(job.job_id)
        system_after = self.system_view_without(job.job_id)
        decision = self.policy.on_job_completion(job, system_after)
        self.policy.validate_decision(decision, system_after, arriving=None)
        self._apply(decision)
        self.policy.on_job_removed(job)

    def system_view_without(self, job_id: int) -> SystemView:
        """View with one job excluded (used at completion time).

        A plain snapshot (reusing the live JobViews) because the
        excluded job is still in the live table until ``_forget_job``
        runs.
        """
        views = {
            jid: view for jid, view in self._views.items() if jid != job_id
        }
        return SystemView(self.effective_cpus, views)

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def _accept_report(self, job: Job, report: PerformanceReport) -> None:
        super()._accept_report(job, report)
        view = self._views.get(job.job_id)
        if view is not None:
            view.last_report = report
        system = self.system_view()
        decision = self.policy.on_report(job, report, system)
        self.policy.validate_decision(decision, system, arriving=None)
        self._apply(decision)
        self.on_state_change()

    # ------------------------------------------------------------------
    # fault handling (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def _fault_speed_factor(self, job: Job) -> float:
        return self.machine.partition_speed_factor(job.job_id)

    def on_cpu_failed(self, cpu_id: int, permanent: bool = True) -> None:
        """A CPU failed: shrink capacity and repair the owner's partition.

        Recovery, in order of preference: grow the partition back from
        the free pool (the policy never notices), let it run one CPU
        short (the policy is told via ``note_forced_allocation``), or —
        when the job just lost its only CPU and nothing is free — kill
        the job so the queuing system can retry it.
        """
        if self.machine.cpu_health(cpu_id) is CpuHealth.OFFLINE:
            return  # duplicate fault on an already-offline CPU
        pre_owner = self.machine.cpus[cpu_id].owner
        old_cpus = (
            self.machine.partition_of(pre_owner) if pre_owner is not None else None
        )
        owner = self.machine.fail_cpu(cpu_id, self.sim.now)
        self._record_fault(
            "cpu_fail", cpu_id, detail="permanent" if permanent else "transient"
        )
        if owner is not None:
            job = self.jobs[owner]
            current = self.machine.allocation_of(owner)
            if self.machine.free_cpus > 0:
                # Replace the lost CPU from the healthy free pool: the
                # partition returns to its pre-fault size, so neither
                # the policy nor the realloc trace sees a change.
                self.machine.resize_job(owner, current + 1, self.sim.now)
                if self.locality is not None and old_cpus is not None:
                    self.locality.on_reallocation(
                        owner, old_cpus, self.machine.partition_of(owner), self.sim.now
                    )
                self._record_fault(
                    "fallback", owner,
                    detail=f"replaced failed cpu {cpu_id} from free pool",
                    value=float(current + 1),
                )
            elif current >= 1:
                # No spare CPU: the partition runs one short.
                if self.locality is not None and old_cpus is not None:
                    self.locality.on_reallocation(
                        owner, old_cpus, self.machine.partition_of(owner), self.sim.now
                    )
                self._record_realloc(job, current + 1, current)
                self.policy.note_forced_allocation(owner, current)
            else:
                # The job's only CPU died and nothing is free.
                self.kill_job(job, reason=f"lost last CPU {cpu_id}")
                return  # kill_job already notified the state change
            view = self._views.get(owner)
            if view is not None:
                view.allocation = self.machine.allocation_of(owner)
        self.on_state_change()

    def on_cpu_repaired(self, cpu_id: int) -> None:
        if self.machine.repair_cpu(cpu_id, self.sim.now):
            self._record_fault("cpu_repair", cpu_id)
            self.on_state_change()

    def on_node_degraded(self, node: int, factor: float) -> None:
        self.machine.degrade_node(node, factor, self.sim.now)
        self._record_fault("node_degrade", node, value=factor)

    def on_node_restored(self, node: int) -> None:
        self.machine.restore_node(node, self.sim.now)
        self._record_fault("node_restore", node, value=1.0)

    def force_allocation(self, job_id: int, procs: int, reason: str = "") -> int:
        """Impose an allocation outside the policy (graceful degradation).

        Used by the fault injector's equal-share fallback for jobs
        whose measurements went stale.  Growth is clamped to the free
        pool; the policy is resynchronised through
        ``note_forced_allocation``.  Returns the allocation actually
        in force afterwards.
        """
        if job_id not in self.jobs:
            raise KeyError(f"force_allocation: job {job_id} is not running")
        current = self.machine.allocation_of(job_id)
        if procs > current:
            procs = min(procs, current + self.machine.free_cpus)
        procs = max(1, procs)
        if procs == current:
            return current
        job = self.jobs[job_id]
        old_cpus = self.machine.partition_of(job_id)
        self.machine.resize_job(job_id, procs, self.sim.now)
        view = self._views.get(job_id)
        if view is not None:
            view.allocation = procs
        if self.locality is not None:
            self.locality.on_reallocation(
                job_id, old_cpus, self.machine.partition_of(job_id), self.sim.now
            )
        self._record_realloc(job, current, procs)
        self.policy.note_forced_allocation(job_id, procs)
        self._record_fault("fallback", job_id, detail=reason, value=float(procs))
        self.on_state_change()
        return procs

    # ------------------------------------------------------------------
    # enforcement
    # ------------------------------------------------------------------
    def _apply(self, decision: AllocationDecision) -> None:
        """Resize partitions, shrinking before growing."""
        if not decision:
            return
        shrinks: List[int] = []
        grows: List[int] = []
        for job_id, procs in decision.items():
            if job_id not in self.jobs:
                raise KeyError(f"decision names unknown job {job_id}")
            current = self.machine.allocation_of(job_id)
            if procs < current:
                shrinks.append(job_id)
            elif procs > current:
                grows.append(job_id)
        for job_id in shrinks + grows:
            old = self.machine.allocation_of(job_id)
            new = decision[job_id]
            old_cpus = self.machine.partition_of(job_id)
            self.machine.resize_job(job_id, new, self.sim.now)
            view = self._views.get(job_id)
            if view is not None:
                view.allocation = new
            if self.locality is not None and new != old:
                self.locality.on_reallocation(
                    job_id, old_cpus, self.machine.partition_of(job_id), self.sim.now
                )
            self._record_realloc(self.jobs[job_id], old, new)

    def _record_realloc(self, job: Job, old: int, new: int) -> None:
        if old == new:
            return
        self.reallocation_count += 1
        if self.trace is not None:
            self.trace.record_reallocation(
                ReallocationRecord(self.sim.now, job.job_id, job.app_name, old, new)
            )

    def finalize(self) -> None:
        """Flush machine bursts at the end of a run."""
        self.machine.finalize(self.sim.now)
