"""Model of the native IRIX scheduler with the SGI-MP runtime.

The paper's IRIX baseline runs each application with
``OMP_NUM_THREADS`` kernel threads (the tuned request) under the
operating system's time-sharing scheduler.  Its problems, observed in
§5.1.1, are structural and reproduced here:

* **no space sharing** — kernel threads of all applications compete
  for the CPUs, so with the default multiprogramming level of 4 and
  three 30-thread applications the machine is heavily overcommitted;
* **placement interference** — "sometimes two kernel threads belonging
  to the same or different applications can be allocated to the same
  processor, degrading the application performance and generating many
  process migrations";
* **no coordination** with the queuing system: the multiprogramming
  level is fixed.

The model computes each application's *effective* processor share per
segment between scheduling events:

    eff_procs = threads * min(1, P / T) * placement_efficiency
                        / (1 + overcommit_penalty * max(0, T/P - 1))

where ``T`` is the total number of runnable kernel threads.  Burst and
migration statistics are accounted analytically per segment (recording
every ~quarter-second quantum individually would add nothing but heat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.metrics.trace import TraceRecorder
from repro.qs.job import Job
from repro.rm.manager import BaseResourceManager
from repro.runtime.nthlib import RuntimeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class IrixConfig:
    """Calibration of the IRIX time-sharing model.

    Attributes
    ----------
    mpl:
        Fixed multiprogramming level enforced by the queuing system.
    quantum:
        Scheduler quantum: the average CPU burst length under
        time-sharing (Table 2 measures ~243 ms under IRIX).
    placement_efficiency:
        Throughput factor for affinity/placement imperfections that
        exist even without overcommit.
    overcommit_penalty:
        Slowdown per unit of overcommit (T/P - 1): context switching,
        cache pollution and lock-holder preemption.
    interference_per_job:
        Slowdown per *additional co-running application*.  Models the
        placement pathologies §5.1.1 describes — "two kernel threads
        belonging to the same or different applications can be
        allocated to the same processor" — plus the memory-locality
        loss caused by the constant thread migrations, which grow with
        the number of competing applications even before the machine
        is overcommitted.
    migration_rate_overcommitted:
        Kernel-thread migrations per thread-second while T > P.
    migration_rate_normal:
        Migrations per thread-second while the machine is not
        overcommitted.
    """

    mpl: int = 4
    quantum: float = 0.243
    placement_efficiency: float = 0.90
    overcommit_penalty: float = 0.35
    interference_per_job: float = 0.12
    migration_rate_overcommitted: float = 1.7
    migration_rate_normal: float = 0.02

    def __post_init__(self) -> None:
        if self.mpl < 1:
            raise ValueError("mpl must be >= 1")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if not 0 < self.placement_efficiency <= 1:
            raise ValueError("placement_efficiency must be in (0, 1]")
        if self.overcommit_penalty < 0:
            raise ValueError("overcommit_penalty must be >= 0")
        if self.interference_per_job < 0:
            raise ValueError("interference_per_job must be >= 0")
        if self.migration_rate_overcommitted < 0 or self.migration_rate_normal < 0:
            raise ValueError("migration rates must be >= 0")


class IrixResourceManager(BaseResourceManager):
    """Time-shared execution under the native scheduler model."""

    name = "IRIX"

    def __init__(
        self,
        sim: Simulator,
        n_cpus: int,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        config: Optional[IrixConfig] = None,
        runtime_config: Optional[RuntimeConfig] = None,
    ) -> None:
        base_runtime = runtime_config or RuntimeConfig()
        # The SGI-MP library has no SelfAnalyzer: jobs never report.
        runtime = RuntimeConfig(
            noise_sigma=base_runtime.noise_sigma,
            use_selfanalyzer=False,
            analyzer=base_runtime.analyzer,
        )
        super().__init__(sim, n_cpus, streams, trace, runtime)
        self.config = config or IrixConfig()
        self._threads: Dict[int, int] = {}
        self._segment_start = sim.now
        self._migration_debt = 0.0
        #: CPUs currently failed (the time-sharing model has no
        #: per-CPU placement, so a set of ids is all we need)
        self._offline: Set[int] = set()

    def __getstate__(self) -> Dict[str, Any]:
        # Sorted canonical form: set iteration order depends on
        # insertion history, and snapshot bytes must not (see
        # Machine.__getstate__).
        state = dict(self.__dict__)
        state["_offline"] = sorted(self._offline)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        state["_offline"] = set(state["_offline"])
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # admission: fixed multiprogramming level, no coordination
    # ------------------------------------------------------------------
    def can_admit(self, queued_jobs: int, head_request: Optional[int] = None) -> bool:
        return queued_jobs > 0 and self.running_count < self.config.mpl

    def _allocation(self, job_id: int) -> int:
        return self._threads[job_id]

    @property
    def effective_cpus(self) -> int:
        """CPUs still healthy (time-sharing spreads over all of them)."""
        return self.n_cpus - len(self._offline)

    # ------------------------------------------------------------------
    # fault handling: capacity shrinks, every running job slows down
    # ------------------------------------------------------------------
    def on_cpu_failed(self, cpu_id: int, permanent: bool = True) -> None:
        if not 0 <= cpu_id < self.n_cpus or cpu_id in self._offline:
            return
        if self.effective_cpus <= 1:
            self._record_fault(
                "cpu_fail", cpu_id, detail="skipped: last healthy CPU"
            )
            return
        self._account_segment()
        self._offline.add(cpu_id)
        self._record_fault(
            "cpu_fail", cpu_id, detail="permanent" if permanent else "transient"
        )
        self.on_state_change()

    def on_cpu_repaired(self, cpu_id: int) -> None:
        if cpu_id not in self._offline:
            return
        self._account_segment()
        self._offline.discard(cpu_id)
        self._record_fault("cpu_repair", cpu_id)
        self.on_state_change()

    # ------------------------------------------------------------------
    # effective processor shares
    # ------------------------------------------------------------------
    @property
    def total_threads(self) -> int:
        """Runnable kernel threads across all jobs."""
        return sum(self._threads.values())

    def effective_procs(self, threads: int) -> float:
        """Effective CPU share of a job running *threads* threads."""
        total = self.total_threads
        if total <= 0 or threads <= 0:
            return 0.0
        cfg = self.config
        capacity = self.effective_cpus
        share = threads * min(1.0, capacity / total)
        overcommit = max(0.0, total / capacity - 1.0)
        share *= cfg.placement_efficiency / (1.0 + cfg.overcommit_penalty * overcommit)
        interference = cfg.interference_per_job * max(0, len(self._threads) - 1)
        share /= 1.0 + interference
        return max(share, 0.05)

    def iteration_speed_procs(self, job: Job, nominal_procs: int) -> float:
        return self.effective_procs(self._threads[job.job_id])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_job(self, job: Job) -> None:
        self._account_segment()
        job.mark_started(self.sim.now)
        assert job.request is not None
        self._threads[job.job_id] = job.request
        self._launch_runtime(job)
        self.on_state_change()

    def _release_job(self, job: Job) -> None:
        self._account_segment()
        del self._threads[job.job_id]

    def finalize(self) -> None:
        """Account the trailing segment at the end of the run."""
        self._account_segment()

    # ------------------------------------------------------------------
    # analytic trace accounting
    # ------------------------------------------------------------------
    def _account_segment(self) -> None:
        now = self.sim.now
        duration = now - self._segment_start
        self._segment_start = now
        if duration <= 0 or not self._threads or self.trace is None:
            return
        total = self.total_threads
        cfg = self.config
        capacity = self.effective_cpus
        # Thread-to-CPU distribution: round-robin, so `rem` CPUs hold
        # one extra thread.
        if total >= capacity:
            base, rem = divmod(total, capacity)
            for cpu in range(capacity):
                sharers = base + (1 if cpu < rem else 0)
                self.trace.record_timeshare_segment(
                    cpu, now - duration, now, sharers, cfg.quantum
                )
            rate = cfg.migration_rate_overcommitted
        else:
            for cpu in range(total):
                self.trace.record_timeshare_segment(
                    cpu, now - duration, now, 1, cfg.quantum
                )
            rate = cfg.migration_rate_normal
        self._migration_debt += rate * total * duration
        whole = int(self._migration_debt)
        if whole > 0:
            self.trace.record_migrations(whole)
            self._migration_debt -= whole
