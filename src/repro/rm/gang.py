"""Gang scheduling (Ousterhout, 1982): time-slicing whole partitions.

The classic alternative to the paper's space-sharing family: every
application runs with its *full* request (all threads co-scheduled,
so fine-grain synchronisation stays cheap), and the machine
time-multiplexes between *rows* of an Ousterhout matrix — sets of
jobs whose requests fit the machine together.  Each row runs for one
long quantum, then the next row is switched in.

Strengths and weaknesses relative to PDPA emerge naturally:

* no malleability needed, full-request execution while running;
* but a job's wall-clock rate is divided by the number of rows, and
  row fragmentation wastes capacity (a row with 40 of 60 CPUs used
  still consumes a full quantum);
* no performance measurement: a poorly scaling job gangs its full
  request forever.

The implementation models the matrix analytically, like the IRIX
model: jobs advance at ``1 / n_rows`` of their dedicated speed
(adjusted for a per-switch overhead), rows are repacked first-fit at
every arrival and completion, and burst statistics are synthesised
from the quantum length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.trace import TraceRecorder
from repro.qs.job import Job
from repro.rm.manager import BaseResourceManager
from repro.runtime.nthlib import RuntimeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class GangConfig:
    """Gang-scheduler parameters.

    Attributes
    ----------
    quantum:
        Row time slice (seconds).  Long, as gang schedulers use
        (100 ms-class context-switch costs must be amortised).
    switch_overhead:
        Fraction of each quantum lost to the row switch (cache reload,
        coordinated preemption).
    max_jobs:
        Admission cap (None = unlimited rows).
    """

    quantum: float = 2.0
    switch_overhead: float = 0.02
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if not 0 <= self.switch_overhead < 1:
            raise ValueError("switch_overhead must be in [0, 1)")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1 or None")


def pack_rows(requests: Dict[int, int], capacity: int) -> List[List[int]]:
    """First-fit-decreasing packing of jobs into Ousterhout rows.

    Every job occupies ``min(request, capacity)`` slots of one row.
    Returns the rows as lists of job ids (deterministic order).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    rows: List[List[int]] = []
    loads: List[int] = []
    order = sorted(requests, key=lambda jid: (-requests[jid], jid))
    for jid in order:
        need = min(requests[jid], capacity)
        for index, load in enumerate(loads):
            if load + need <= capacity:
                rows[index].append(jid)
                loads[index] += need
                break
        else:
            rows.append([jid])
            loads.append(need)
    return rows


class GangScheduler(BaseResourceManager):
    """Time-sliced gang scheduling over Ousterhout rows."""

    name = "Gang"

    def __init__(
        self,
        sim: Simulator,
        n_cpus: int,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        config: Optional[GangConfig] = None,
        runtime_config: Optional[RuntimeConfig] = None,
    ) -> None:
        base_runtime = runtime_config or RuntimeConfig()
        # Gangs are not malleable at runtime: no SelfAnalyzer loop.
        runtime = RuntimeConfig(
            noise_sigma=base_runtime.noise_sigma,
            use_selfanalyzer=False,
            analyzer=base_runtime.analyzer,
        )
        super().__init__(sim, n_cpus, streams, trace, runtime)
        self.config = config or GangConfig()
        self._requests: Dict[int, int] = {}
        self._rows: List[List[int]] = []
        self._segment_start = sim.now

    # ------------------------------------------------------------------
    # matrix bookkeeping
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Rows in the current Ousterhout matrix."""
        return max(len(self._rows), 1)

    def row_of(self, job_id: int) -> int:
        """Row index of a running job (ValueError if unknown)."""
        for index, row in enumerate(self._rows):
            if job_id in row:
                return index
        raise ValueError(f"job {job_id} is not in the matrix")

    def _repack(self) -> None:
        self._rows = pack_rows(self._requests, self.n_cpus)

    # ------------------------------------------------------------------
    # admission and lifecycle
    # ------------------------------------------------------------------
    def can_admit(self, queued_jobs: int, head_request: Optional[int] = None) -> bool:
        if queued_jobs <= 0:
            return False
        if self.config.max_jobs is None:
            return True
        return self.running_count < self.config.max_jobs

    def _allocation(self, job_id: int) -> int:
        return self._requests[job_id]

    def start_job(self, job: Job) -> None:
        self._account_segment()
        job.mark_started(self.sim.now)
        assert job.request is not None
        self._requests[job.job_id] = min(job.request, self.n_cpus)
        self._repack()
        self._launch_runtime(job)
        self.on_state_change()

    def _release_job(self, job: Job) -> None:
        self._account_segment()
        del self._requests[job.job_id]
        self._repack()

    def finalize(self) -> None:
        self._account_segment()

    # ------------------------------------------------------------------
    # execution rate
    # ------------------------------------------------------------------
    def iteration_speed_procs(self, job: Job, nominal_procs: int) -> float:
        """Full gang while running, scaled by the row duty cycle."""
        request = self._requests[job.job_id]
        duty = (1.0 - self.config.switch_overhead) / self.n_rows
        return max(request * duty, 0.05)

    # ------------------------------------------------------------------
    # analytic trace accounting
    # ------------------------------------------------------------------
    def _account_segment(self) -> None:
        now = self.sim.now
        duration = now - self._segment_start
        self._segment_start = now
        if duration <= 0 or not self._requests or self.trace is None:
            return
        # Each CPU runs one job per row slot; a full matrix cycle is
        # n_rows quanta, so each CPU sees one burst per quantum (row
        # switches) when more than one row exists.
        sharers = self.n_rows
        busy = min(sum(self._requests.values()), self.n_cpus * sharers)
        # Approximate per-CPU occupancy by the average row fill.
        for cpu in range(self.n_cpus):
            self.trace.record_timeshare_segment(
                cpu, now - duration, now,
                sharers if sharers > 1 else 1,
                self.config.quantum,
            )
        # Row switches preempt every running thread.
        if sharers > 1:
            switches = duration / self.config.quantum
            self.trace.record_migrations(int(switches * min(busy, self.n_cpus) / 10))
