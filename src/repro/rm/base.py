"""Scheduling-policy interface and the system view policies see.

A policy is a pure decision maker: on every activation (job arrival,
job completion, performance report) it receives a read-only
:class:`SystemView` and returns the new allocation for every running
job it wants to change.  The resource manager enforces the decision on
the machine.  The policy also answers the coordination question the
paper's §4.3 raises — *may the queuing system start another job now?*
— through :meth:`SchedulingPolicy.wants_admission`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro.qs.job import Job
from repro.runtime.selfanalyzer import PerformanceReport


@dataclass
class JobView:
    """Read-only snapshot of one running job."""

    job: Job
    allocation: int
    last_report: Optional[PerformanceReport] = None

    @property
    def job_id(self) -> int:
        """The job's identifier."""
        return self.job.job_id

    @property
    def request(self) -> int:
        """Processors the job requested at submission."""
        assert self.job.request is not None
        return self.job.request

    @property
    def efficiency(self) -> Optional[float]:
        """Latest measured efficiency, if any report arrived yet."""
        if self.last_report is None:
            return None
        return self.last_report.efficiency


class SystemView:
    """Read-only snapshot of the machine and all running jobs."""

    def __init__(self, total_cpus: int, jobs: Dict[int, JobView]) -> None:
        if total_cpus < 1:
            raise ValueError(f"total_cpus must be >= 1, got {total_cpus}")
        self.total_cpus = total_cpus
        self.jobs = jobs

    @property
    def allocated_cpus(self) -> int:
        """CPUs currently inside partitions."""
        return sum(view.allocation for view in self.jobs.values())

    @property
    def free_cpus(self) -> int:
        """CPUs not allocated to any job."""
        return self.total_cpus - self.allocated_cpus

    @property
    def running_jobs(self) -> int:
        """Current multiprogramming level."""
        return len(self.jobs)

    def view_of(self, job_id: int) -> JobView:
        """Snapshot of one job (KeyError if not running)."""
        return self.jobs[job_id]


#: An allocation decision: job_id -> new partition size.  Jobs absent
#: from the mapping keep their current allocation.
AllocationDecision = Dict[int, int]


class SchedulingPolicy(ABC):
    """Base class for processor-allocation policies."""

    #: Policy name used in reports and result tables.
    name: str = "policy"

    #: Fixed multiprogramming level, or ``None`` when the policy
    #: decides admission dynamically (PDPA).
    fixed_mpl: Optional[int] = 4

    #: Whether the policy's decisions depend on SelfAnalyzer reports.
    #: Report-driven policies need graceful degradation when reports
    #: go missing or stale (see :mod:`repro.faults`); oblivious
    #: policies (Equipartition) do not.
    uses_reports: bool = False

    @abstractmethod
    def on_job_arrival(self, job: Job, system: SystemView) -> AllocationDecision:
        """Allocate the arriving job (and optionally rebalance others).

        ``system`` does *not* yet contain the new job; the returned
        decision must include an entry for ``job.job_id`` with its
        initial allocation (>= 1).
        """

    @abstractmethod
    def on_job_completion(self, job: Job, system: SystemView) -> AllocationDecision:
        """Redistribute after *job* completed (already removed from view)."""

    def on_report(
        self, job: Job, report: PerformanceReport, system: SystemView
    ) -> AllocationDecision:
        """React to a performance report (default: no change)."""
        return {}

    def wants_admission(self, system: SystemView, queued_jobs: int) -> bool:
        """Whether the queuing system may start one more job now.

        The default implements the traditional fixed multiprogramming
        level the paper gives to IRIX, Equipartition and
        Equal_efficiency.  A new job always needs at least one CPU,
        which a rebalancing policy can reclaim as long as fewer jobs
        than CPUs are running.
        """
        if queued_jobs <= 0:
            return False
        if self.fixed_mpl is not None and system.running_jobs >= self.fixed_mpl:
            return False
        return system.running_jobs < system.total_cpus

    def on_job_removed(self, job: Job) -> None:
        """Forget per-job state (called after completion)."""

    def note_forced_allocation(self, job_id: int, procs: int) -> None:
        """A fault changed *job_id*'s partition behind the policy's back.

        Called by the resource manager when a CPU failure shrank a
        partition that could not be repaired, or when graceful
        degradation forced an equal-share fallback.  Policies that keep
        per-job allocation memory (PDPA) must resynchronise here; the
        default is a no-op for stateless policies.
        """

    def validate_decision(
        self, decision: AllocationDecision, system: SystemView, arriving: Optional[Job]
    ) -> None:
        """Sanity-check a decision before enforcement.

        Ensures every allocation is >= 1 and the total fits the
        machine.  Called by the resource manager; kept on the policy so
        tests can exercise it directly.
        """
        if not decision and arriving is None:
            # Nothing changes: current allocations already satisfy the
            # machine-fit invariant, so skip rebuilding the totals.
            return
        totals: Dict[int, int] = {
            job_id: view.allocation for job_id, view in system.jobs.items()
        }
        for job_id, procs in decision.items():
            if procs < 1:
                raise ValueError(
                    f"{self.name}: job {job_id} would get {procs} CPUs (< 1)"
                )
            totals[job_id] = procs
        if arriving is not None and arriving.job_id not in decision:
            raise ValueError(
                f"{self.name}: decision lacks the arriving job {arriving.job_id}"
            )
        total = sum(totals.values())
        if total > system.total_cpus:
            raise ValueError(
                f"{self.name}: decision allocates {total} CPUs on a "
                f"{system.total_cpus}-CPU machine"
            )
