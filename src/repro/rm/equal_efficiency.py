"""Equal_efficiency (Nguyen, Zahorjan, Vaswani; JSSPP 1996).

The policy "allocates more processors to those applications that have
the best efficiency using extrapolated values": every application's
measured efficiency at its current allocation is extrapolated to other
allocations with a one-parameter overhead model, and processors are
then handed out greedily so that all applications end up on (roughly)
the same efficiency frontier.

The extrapolation model is the standard execution-signature form

    eff(p) = 1 / (1 + a * (p - 1))

where ``a`` is fitted from the latest report.  The paper's two
criticisms of Equal_efficiency are emergent properties of this
construction and are reproduced faithfully:

* it is "too sensitive to small changes in the efficiency
  measurements" — every noisy report refits ``a`` and can reshuffle
  the whole machine, producing many reallocations;
* superlinear applications (measured efficiency > 1) extrapolate to
  ever-growing efficiency, so the policy hands them their full
  request, and the fitted parameter's jitter makes the allocation
  "unfair" between identical instances.
"""

from __future__ import annotations

from typing import Dict

from repro.qs.job import Job
from repro.rm.base import AllocationDecision, SchedulingPolicy, SystemView
from repro.runtime.selfanalyzer import PerformanceReport
from repro.sim.columns import predicted_efficiency_many

#: Efficiency predictions are clamped to this ceiling so that a
#: negative fitted overhead (superlinear measurement) cannot produce
#: unbounded or negative extrapolations.
MAX_PREDICTED_EFFICIENCY = 2.5


def fit_overhead(procs: int, efficiency: float) -> float:
    """Fit the overhead parameter ``a`` from one (procs, eff) sample."""
    if procs <= 1:
        return 0.0
    if efficiency <= 0:
        raise ValueError(f"efficiency must be positive, got {efficiency}")
    return (1.0 / efficiency - 1.0) / (procs - 1)


def predicted_efficiency(a: float, procs: int) -> float:
    """Extrapolated efficiency at *procs* for overhead parameter *a*."""
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    denominator = 1.0 + a * (procs - 1)
    if denominator <= 1.0 / MAX_PREDICTED_EFFICIENCY:
        return MAX_PREDICTED_EFFICIENCY
    return min(1.0 / denominator, MAX_PREDICTED_EFFICIENCY)


def water_fill(
    total_cpus: int, requests: Dict[int, int], overheads: Dict[int, float]
) -> Dict[int, int]:
    """Greedy marginal-efficiency allocation.

    Every job starts at one CPU; each remaining CPU goes to the job
    whose *next* CPU has the highest extrapolated efficiency, until
    CPUs run out or all jobs reach their requests.  Ties break on job
    id for determinism.
    """
    if total_cpus < len(requests):
        raise ValueError(
            f"cannot give {len(requests)} jobs >= 1 CPU with {total_cpus} CPUs"
        )
    allocation = {jid: 1 for jid in requests}
    remaining = total_cpus - len(requests)
    if remaining <= 0:
        return allocation
    # Each job's marginal efficiency at p = 2..request depends only on
    # its fitted overhead, so evaluate the whole column in one batched
    # kernel call per job instead of re-deriving one point per round
    # of the greedy loop below.
    order = sorted(requests)
    eff_cols = {
        jid: predicted_efficiency_many(
            overheads.get(jid, 0.0),
            range(2, requests[jid] + 1),
            MAX_PREDICTED_EFFICIENCY,
        )
        for jid in order
        if requests[jid] >= 2
    }
    while remaining > 0:
        best_jid = None
        best_eff = 0.0
        for jid in order:
            current = allocation[jid]
            if current >= requests[jid]:
                continue
            # column index for p = current + 1 (the column starts at p=2)
            eff = eff_cols[jid][current - 1]
            if eff > best_eff:
                best_eff = eff
                best_jid = jid
        if best_jid is None:
            break
        allocation[best_jid] += 1
        remaining -= 1
    return allocation


class EqualEfficiency(SchedulingPolicy):
    """Extrapolated-efficiency allocation, refit on every report."""

    name = "Equal_eff"
    #: the overhead fit is driven by SelfAnalyzer reports
    uses_reports = True

    def __init__(self, mpl: int = 4) -> None:
        if mpl < 1:
            raise ValueError(f"multiprogramming level must be >= 1, got {mpl}")
        self.fixed_mpl = mpl
        #: fitted overhead parameter per job (0.0 = optimistic linear)
        self._overheads: Dict[int, float] = {}

    def _rebalance(self, system: SystemView, extra: Dict[int, int]) -> AllocationDecision:
        requests = {view.job_id: view.request for view in system.jobs.values()}
        requests.update(extra)
        return water_fill(system.total_cpus, requests, self._overheads)

    def on_job_arrival(self, job: Job, system: SystemView) -> AllocationDecision:
        assert job.request is not None
        # A job with no measurements yet extrapolates as perfectly
        # scalable (a = 0), the optimistic default.
        self._overheads.setdefault(job.job_id, 0.0)
        return self._rebalance(system, {job.job_id: job.request})

    def on_job_completion(self, job: Job, system: SystemView) -> AllocationDecision:
        return self._rebalance(system, {})

    def on_report(
        self, job: Job, report: PerformanceReport, system: SystemView
    ) -> AllocationDecision:
        self._overheads[job.job_id] = fit_overhead(report.procs, report.efficiency)
        return self._rebalance(system, {})

    def on_job_removed(self, job: Job) -> None:
        self._overheads.pop(job.job_id, None)

    def overhead_of(self, job_id: int) -> float:
        """Fitted overhead parameter for one job (diagnostics)."""
        return self._overheads.get(job_id, 0.0)
