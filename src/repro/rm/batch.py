"""Traditional batch space sharing (rigid FCFS partitions).

The strawman §4.3 argues against: applications receive *exactly* the
processors they request, run to completion on a dedicated partition,
and a queued job starts only when enough processors are free.  This is
how classic batch queuing systems drive space-shared machines, and it
"suffers from fragmentation [...] when the total number of processors
requested does not fit the complete machine" — a 30-CPU job leaves 30
CPUs idle on a 60-CPU machine if the next job wants 31.

Included as a baseline for the coordination ablations; the paper
itself evaluates only the dynamic policies.
"""

from __future__ import annotations

from typing import Optional

from repro.qs.job import Job
from repro.rm.base import AllocationDecision, SchedulingPolicy, SystemView


class BatchFCFS(SchedulingPolicy):
    """Exact-request dedicated partitions, FCFS admission."""

    name = "Batch"
    #: no job-count limit: admission is gated by free processors only
    fixed_mpl: Optional[int] = None

    def __init__(self, reserve_for_head: bool = True) -> None:
        #: when True, the head-of-queue job's request gates admission
        #: (strict FCFS, no backfilling); the queuing system only asks
        #: "may one more start", so the gate is the free-CPU count.
        self.reserve_for_head = reserve_for_head
        self._next_request: Optional[int] = None

    def note_head_request(self, request: Optional[int]) -> None:
        """Tell the policy the processor request of the queue head.

        The NANOS QS asks for admission before revealing the job; a
        caller that knows the head's request can set it here so the
        admission answer is exact.  Without it the policy admits
        whenever at least one CPU is free, and the arrival hook clamps
        the allocation — which would violate rigidity — so the
        experiment runners always provide it.
        """
        self._next_request = request

    def wants_admission(self, system: SystemView, queued_jobs: int) -> bool:
        if queued_jobs <= 0:
            return False
        needed = self._next_request if self._next_request else 1
        return system.free_cpus >= needed

    def on_job_arrival(self, job: Job, system: SystemView) -> AllocationDecision:
        assert job.request is not None
        if job.request > system.free_cpus:
            raise ValueError(
                f"Batch: job {job.job_id} requests {job.request} CPUs but only "
                f"{system.free_cpus} are free — admission gate violated"
            )
        return {job.job_id: job.request}

    def on_job_completion(self, job: Job, system: SystemView) -> AllocationDecision:
        return {}
