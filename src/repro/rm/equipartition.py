"""Equipartition (McCann, Vaswani, Zahorjan; TOCS 1993).

"Equipartition is a dynamic processor allocation policy that decides
an equal allocation among running jobs.  Reallocations are done at job
arrival and job completion."

The equal share is capped by each job's processor request; CPUs a
capped job cannot use are redistributed among the remaining jobs
(processor-conserving water-filling).  Performance reports are
ignored: the policy is oblivious to measured efficiency, which is
exactly the property PDPA improves on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.qs.job import Job
from repro.rm.base import AllocationDecision, SchedulingPolicy, SystemView


def equal_shares(total_cpus: int, requests: Dict[int, int]) -> Dict[int, int]:
    """Divide *total_cpus* equally among jobs, capped by request.

    The classic iterative scheme: give every uncapped job an equal
    share of the CPUs left; jobs whose request is below the share are
    frozen at their request and the remainder is re-divided.  Leftover
    CPUs after integer division go to the jobs with the largest
    requests (stable tie-break by job id).

    Returns an allocation of at least 1 CPU per job whenever
    ``total_cpus >= len(requests)``.
    """
    if not requests:
        return {}
    if total_cpus < len(requests):
        raise ValueError(
            f"cannot give {len(requests)} jobs >= 1 CPU with {total_cpus} CPUs"
        )
    allocation: Dict[int, int] = {}
    remaining_cpus = total_cpus
    active: List[Tuple[int, int]] = sorted(requests.items())
    # Freeze jobs whose request is smaller than the current share.
    while active:
        share = remaining_cpus // len(active)
        capped = [(jid, req) for jid, req in active if req <= share]
        if not capped:
            break
        for jid, req in capped:
            allocation[jid] = req
            remaining_cpus -= req
        active = [(jid, req) for jid, req in active if req > share]
    if active:
        share = remaining_cpus // len(active)
        leftover = remaining_cpus - share * len(active)
        # Spread the leftover one CPU at a time, biggest requests first.
        order = sorted(active, key=lambda item: (-item[1], item[0]))
        bonus = {jid for jid, _ in order[:leftover]}
        for jid, req in active:
            allocation[jid] = max(1, min(req, share + (1 if jid in bonus else 0)))
    return allocation


class Equipartition(SchedulingPolicy):
    """Equal allocation among running jobs, reallocating at arrivals
    and completions only."""

    name = "Equip"

    def __init__(self, mpl: int = 4) -> None:
        if mpl < 1:
            raise ValueError(f"multiprogramming level must be >= 1, got {mpl}")
        self.fixed_mpl = mpl

    def _rebalance(self, system: SystemView, extra: Dict[int, int]) -> AllocationDecision:
        requests = {view.job_id: view.request for view in system.jobs.values()}
        requests.update(extra)
        return equal_shares(system.total_cpus, requests)

    def on_job_arrival(self, job: Job, system: SystemView) -> AllocationDecision:
        assert job.request is not None
        return self._rebalance(system, {job.job_id: job.request})

    def on_job_completion(self, job: Job, system: SystemView) -> AllocationDecision:
        return self._rebalance(system, {})
