"""The NANOS Resource Manager: the user-level processor scheduler.

The RM "1) decides how many processors to allocate to each application
and 2) enforces the processor scheduling policy decisions".  Decisions
are made by a pluggable :class:`~repro.rm.base.SchedulingPolicy`
(Equipartition, Equal_efficiency, PDPA); enforcement maps allocation
counts to actual CPUs on the :class:`~repro.machine.Machine`.

The native IRIX scheduler is modelled separately by
:class:`~repro.rm.irix.IrixResourceManager`: it time-shares kernel
threads over the CPUs instead of space-sharing exclusive partitions,
and it never coordinates with the queuing system.
"""

from repro.rm.base import JobView, SchedulingPolicy, SystemView
from repro.rm.manager import BaseResourceManager, SpaceSharedResourceManager
from repro.rm.equipartition import Equipartition
from repro.rm.equal_efficiency import EqualEfficiency
from repro.rm.irix import IrixConfig, IrixResourceManager
from repro.rm.mccann import McCannDynamic
from repro.rm.batch import BatchFCFS
from repro.rm.gang import GangConfig, GangScheduler

__all__ = [
    "JobView",
    "SchedulingPolicy",
    "SystemView",
    "BaseResourceManager",
    "SpaceSharedResourceManager",
    "Equipartition",
    "EqualEfficiency",
    "IrixConfig",
    "IrixResourceManager",
    "McCannDynamic",
    "BatchFCFS",
    "GangConfig",
    "GangScheduler",
]
