"""The "Dynamic" policy of McCann, Vaswani and Zahorjan (TOCS 1993).

The paper's related work describes it: "a processor allocation policy
that dynamically adjusts the number of processors allocated to
parallel applications to improve the processor utilization.  Their
approach considers the idleness, a characteristic provided by each
application, to allocate processors, and results in a large number of
reallocations."

Our model: each application's *useful parallelism* is estimated from
its latest report as its measured speedup (processors it can keep
busy).  On every report the machine is re-divided proportionally to
the estimated parallelism — processors leave applications that are
idling on them and join applications that can use them.  Because the
estimate is refreshed with every (noisy) report, the policy reallocates
at a much finer grain than Equipartition, which is exactly the
behavioural contrast the related work draws.
"""

from __future__ import annotations

from typing import Dict

from repro.qs.job import Job
from repro.rm.base import AllocationDecision, SchedulingPolicy, SystemView
from repro.runtime.selfanalyzer import PerformanceReport


def proportional_shares(
    total_cpus: int, requests: Dict[int, int], parallelism: Dict[int, float]
) -> Dict[int, int]:
    """Divide CPUs proportionally to each job's useful parallelism.

    Every job gets at least one CPU and at most its request; jobs with
    no estimate yet count as fully parallel (their request).  Leftover
    CPUs from capped/rounded shares are handed to the jobs with the
    largest fractional remainders.
    """
    if not requests:
        return {}
    if total_cpus < len(requests):
        raise ValueError(
            f"cannot give {len(requests)} jobs >= 1 CPU with {total_cpus} CPUs"
        )
    weights = {
        jid: min(max(parallelism.get(jid, float(req)), 1.0), float(req))
        for jid, req in requests.items()
    }
    total_weight = sum(weights.values())
    # Everyone gets the run-to-completion floor of one CPU first; the
    # rest is divided proportionally to the parallelism weights.
    allocation = {jid: 1 for jid in requests}
    remaining = total_cpus - len(requests)
    raw = {
        jid: remaining * weight / total_weight for jid, weight in weights.items()
    }
    for jid in requests:
        extra = min(requests[jid] - 1, int(raw[jid]))
        allocation[jid] += extra
    leftover = total_cpus - sum(allocation.values())
    # Hand out the rounding leftover by largest fractional part, then
    # keep cycling while capped jobs force CPUs elsewhere.
    order = sorted(requests, key=lambda jid: raw[jid] - int(raw[jid]), reverse=True)
    while leftover > 0:
        progressed = False
        for jid in order:
            if leftover == 0:
                break
            if allocation[jid] < requests[jid]:
                allocation[jid] += 1
                leftover -= 1
                progressed = True
        if not progressed:
            break  # every job is at its request; CPUs stay idle
    return allocation


class McCannDynamic(SchedulingPolicy):
    """Idleness-driven proportional allocation, refreshed per report."""

    name = "Dynamic"

    def __init__(self, mpl: int = 4) -> None:
        if mpl < 1:
            raise ValueError(f"multiprogramming level must be >= 1, got {mpl}")
        self.fixed_mpl = mpl
        #: estimated useful parallelism (speedup) per job
        self._parallelism: Dict[int, float] = {}

    def _rebalance(self, system: SystemView, extra: Dict[int, int]) -> AllocationDecision:
        requests = {view.job_id: view.request for view in system.jobs.values()}
        requests.update(extra)
        return proportional_shares(system.total_cpus, requests, self._parallelism)

    def on_job_arrival(self, job: Job, system: SystemView) -> AllocationDecision:
        assert job.request is not None
        return self._rebalance(system, {job.job_id: job.request})

    def on_job_completion(self, job: Job, system: SystemView) -> AllocationDecision:
        return self._rebalance(system, {})

    def on_report(
        self, job: Job, report: PerformanceReport, system: SystemView
    ) -> AllocationDecision:
        # Idleness = allocated processors the application cannot keep
        # busy; its complement is the measured speedup.
        self._parallelism[job.job_id] = max(report.speedup, 1.0)
        return self._rebalance(system, {})

    def on_job_removed(self, job: Job) -> None:
        self._parallelism.pop(job.job_id, None)
