"""NUMA topology of the simulated machine.

The SGI Origin 2000 is built from dual-processor nodes connected by a
fat hypercube; memory access cost grows with router hops.  For
scheduling purposes what matters is *grouping*: a partition whose CPUs
sit on few nodes enjoys better data locality, and the placement code
in :mod:`repro.machine.machine` uses the topology to prefer compact
partitions (the paper highlights data locality as an issue simulations
usually miss).
"""

from __future__ import annotations

from typing import List, Sequence


class NumaTopology:
    """CPUs grouped into NUMA nodes with a hop-count distance metric.

    Parameters
    ----------
    n_cpus:
        Total number of CPUs.
    cpus_per_node:
        CPUs per NUMA node (Origin 2000 nodes hold 2; the default of 2
        matches it).  The last node may be smaller if ``n_cpus`` is not
        a multiple.
    """

    def __init__(self, n_cpus: int, cpus_per_node: int = 2) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        if cpus_per_node < 1:
            raise ValueError(f"cpus_per_node must be >= 1, got {cpus_per_node}")
        self.n_cpus = n_cpus
        self.cpus_per_node = cpus_per_node

    @property
    def n_nodes(self) -> int:
        """Number of NUMA nodes."""
        return (self.n_cpus + self.cpus_per_node - 1) // self.cpus_per_node

    def node_of(self, cpu: int) -> int:
        """NUMA node that hosts *cpu*."""
        self._check_cpu(cpu)
        return cpu // self.cpus_per_node

    def cpus_of_node(self, node: int) -> List[int]:
        """CPU ids belonging to *node*."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        first = node * self.cpus_per_node
        return list(range(first, min(first + self.cpus_per_node, self.n_cpus)))

    def distance(self, cpu_a: int, cpu_b: int) -> int:
        """Hop distance between two CPUs.

        0 on the same node; otherwise the hypercube hop count between
        the two nodes (Hamming distance of the node numbers), which is
        how the Origin 2000 router fabric is organised.
        """
        node_a = self.node_of(cpu_a)
        node_b = self.node_of(cpu_b)
        if node_a == node_b:
            return 0
        return max(bin(node_a ^ node_b).count("1"), 1)

    def spread(self, cpus: Sequence[int]) -> int:
        """Number of distinct nodes a CPU set spans (1 = fully compact)."""
        if not cpus:
            return 0
        return len({self.node_of(cpu) for cpu in cpus})

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_cpus:
            raise ValueError(f"cpu {cpu} out of range [0, {self.n_cpus})")
