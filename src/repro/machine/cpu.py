"""Per-CPU state and burst bookkeeping.

Each CPU tracks which job currently owns it and since when.  When
ownership changes, the finished interval is emitted as a
:class:`~repro.metrics.trace.Burst` — the unit from which the paper's
Table 2 statistics (average burst duration, bursts per CPU) are
computed.

Since the columnar hot-core refactor the state itself lives in
:class:`repro.sim.columns.CpuColumns` — packed per-CPU columns shared
by every CPU of one machine — and :class:`CpuState` is a *view*: a
(columns, position) handle exposing the same scalar API as before.
The machine's hot loops bypass the views entirely and call the batched
column kernels; the views serve the cold paths (fault handling,
queries, tests) and external readers like the fuzz oracle.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.metrics.trace import Burst, TraceRecorder
from repro.sim.columns import (
    HEALTH_DEGRADED,
    HEALTH_OFFLINE,
    HEALTH_ONLINE,
    CpuColumns,
)


class CpuHealth(enum.Enum):
    """Health of one CPU, as seen by the allocator.

    * ``ONLINE`` — fully functional (the only state the no-fault path
      ever sees);
    * ``DEGRADED`` — functional but slow, e.g. its NUMA node's router
      or memory is throttled; still allocatable;
    * ``OFFLINE`` — failed; never allocatable until repaired.
    """

    ONLINE = "online"
    DEGRADED = "degraded"
    OFFLINE = "offline"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: CpuHealth <-> packed int8 column code.
_HEALTH_CODE = {
    CpuHealth.ONLINE: HEALTH_ONLINE,
    CpuHealth.DEGRADED: HEALTH_DEGRADED,
    CpuHealth.OFFLINE: HEALTH_OFFLINE,
}
_HEALTH_FROM_CODE = {code: health for health, code in _HEALTH_CODE.items()}


def burst_emitter(
    trace: Optional[TraceRecorder],
) -> Optional[Callable[[int, int, str, float, float], None]]:
    """Adapt a trace recorder to the column kernels' emit callback."""
    if trace is None:
        return None

    def emit(cpu: int, job_id: int, app_name: str, start: float, end: float) -> None:
        trace.record_burst(Burst(cpu, job_id, app_name, start, end))

    return emit


class CpuState:
    """Ownership view of one CPU inside a :class:`CpuColumns` store.

    Attributes
    ----------
    cpu_id:
        Index of this CPU.
    owner:
        Job id currently running here, or ``None`` when idle.
    health:
        Availability of the CPU; see :class:`CpuHealth`.

    A standalone ``CpuState(i)`` owns a private single-slot column
    store (unit tests construct CPUs in isolation); machine-owned
    views share the machine's store.
    """

    __slots__ = ("cpu_id", "_cols", "_pos")

    def __init__(
        self,
        cpu_id: int,
        _cols: Optional[CpuColumns] = None,
        _pos: int = 0,
    ) -> None:
        self.cpu_id = cpu_id
        if _cols is None:
            _cols = CpuColumns(1)
            _pos = 0
        self._cols = _cols
        self._pos = _pos

    # ------------------------------------------------------------------
    # column-backed attributes (same API as the pre-columnar class)
    # ------------------------------------------------------------------
    @property
    def owner(self) -> Optional[int]:
        """Job id currently running here, or ``None`` when idle."""
        return self._cols.owner_of(self._pos)

    @owner.setter
    def owner(self, value: Optional[int]) -> None:
        # pre-columnar CpuState exposed owner as a plain attribute;
        # the fuzz oracle's corruption tests poke it directly
        self._cols.owner[self._pos] = -1 if value is None else value

    @property
    def owner_app(self) -> str:
        """Application name of the owning job (``""`` when idle)."""
        return self._cols.app[self._pos]

    @property
    def since(self) -> float:
        """Time the current burst (busy or idle) started."""
        return float(self._cols.since[self._pos])

    @property
    def busy_time(self) -> float:
        """Accumulated busy seconds."""
        return float(self._cols.busy[self._pos])

    @property
    def switches(self) -> int:
        """Ownership changes seen by this CPU."""
        return int(self._cols.switches[self._pos])

    @property
    def health(self) -> CpuHealth:
        """Availability of the CPU; see :class:`CpuHealth`."""
        return _HEALTH_FROM_CODE[int(self._cols.health[self._pos])]

    @health.setter
    def health(self, value: CpuHealth) -> None:
        self._cols.health[self._pos] = _HEALTH_CODE[value]

    @property
    def idle(self) -> bool:
        """Whether no job owns this CPU."""
        return self._cols.owner[self._pos] == -1

    @property
    def allocatable(self) -> bool:
        """Whether the allocator may place a job here (not OFFLINE)."""
        return self._cols.health[self._pos] != HEALTH_OFFLINE

    def assign(
        self,
        job_id: Optional[int],
        app_name: str,
        now: float,
        trace: Optional[TraceRecorder] = None,
    ) -> Optional[int]:
        """Switch ownership to *job_id* (``None`` = idle) at time *now*.

        Closes the running burst, emits it to *trace*, and returns the
        previous owner's job id (or ``None``) so the caller can decide
        whether the switch counts as a migration.
        """
        return self._cols.assign_one(
            self._pos, job_id, app_name, now, burst_emitter(trace)
        )

    def flush(self, now: float, trace: Optional[TraceRecorder] = None) -> None:
        """Close the running burst without changing ownership.

        Used at the end of a simulation so in-progress bursts appear in
        the trace.
        """
        self._cols.flush_one(self._pos, now, burst_emitter(trace))
