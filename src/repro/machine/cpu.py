"""Per-CPU state and burst bookkeeping.

Each CPU tracks which job currently owns it and since when.  When
ownership changes, the finished interval is emitted as a
:class:`~repro.metrics.trace.Burst` — the unit from which the paper's
Table 2 statistics (average burst duration, bursts per CPU) are
computed.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.metrics.trace import Burst, TraceRecorder


class CpuHealth(enum.Enum):
    """Health of one CPU, as seen by the allocator.

    * ``ONLINE`` — fully functional (the only state the no-fault path
      ever sees);
    * ``DEGRADED`` — functional but slow, e.g. its NUMA node's router
      or memory is throttled; still allocatable;
    * ``OFFLINE`` — failed; never allocatable until repaired.
    """

    ONLINE = "online"
    DEGRADED = "degraded"
    OFFLINE = "offline"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CpuState:
    """Ownership state of one CPU.

    Attributes
    ----------
    cpu_id:
        Index of this CPU.
    owner:
        Job id currently running here, or ``None`` when idle.
    health:
        Availability of the CPU; see :class:`CpuHealth`.
    """

    __slots__ = ("cpu_id", "owner", "owner_app", "since", "busy_time",
                 "switches", "health")

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self.owner: Optional[int] = None
        self.owner_app: str = ""
        self.since: float = 0.0
        self.busy_time: float = 0.0
        self.switches: int = 0
        self.health: CpuHealth = CpuHealth.ONLINE

    @property
    def idle(self) -> bool:
        """Whether no job owns this CPU."""
        return self.owner is None

    @property
    def allocatable(self) -> bool:
        """Whether the allocator may place a job here (not OFFLINE)."""
        return self.health is not CpuHealth.OFFLINE

    def assign(
        self,
        job_id: Optional[int],
        app_name: str,
        now: float,
        trace: Optional[TraceRecorder] = None,
    ) -> Optional[int]:
        """Switch ownership to *job_id* (``None`` = idle) at time *now*.

        Closes the running burst, emits it to *trace*, and returns the
        previous owner's job id (or ``None``) so the caller can decide
        whether the switch counts as a migration.
        """
        previous = self.owner
        if previous == job_id:
            return previous
        if previous is not None:
            duration = now - self.since
            if duration < 0:
                raise ValueError(
                    f"cpu {self.cpu_id}: time went backwards "
                    f"({self.since} -> {now})"
                )
            self.busy_time += duration
            if trace is not None:
                trace.record_burst(
                    Burst(self.cpu_id, previous, self.owner_app, self.since, now)
                )
        self.owner = job_id
        self.owner_app = app_name if job_id is not None else ""
        self.since = now
        self.switches += 1
        return previous

    def flush(self, now: float, trace: Optional[TraceRecorder] = None) -> None:
        """Close the running burst without changing ownership.

        Used at the end of a simulation so in-progress bursts appear in
        the trace.
        """
        if self.owner is None:
            return
        duration = now - self.since
        if duration < 0:
            raise ValueError(f"cpu {self.cpu_id}: flush before burst start")
        self.busy_time += duration
        if trace is not None and duration > 0:
            trace.record_burst(
                Burst(self.cpu_id, self.owner, self.owner_app, self.since, now)
            )
        self.since = now
