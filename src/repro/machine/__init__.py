"""Machine model: a CC-NUMA shared-memory multiprocessor.

Stands in for the paper's SGI Origin 2000 (64 processors, of which 60
are used for the workloads).  The machine tracks:

* which CPUs each running job's partition owns (space sharing),
* per-CPU activity bursts (feeding the Paraver-style analyses),
* kernel-thread migrations caused by reallocations,
* NUMA placement, so partitions prefer topologically close CPUs.
"""

from repro.machine.topology import NumaTopology
from repro.machine.cpu import CpuHealth, CpuState
from repro.machine.machine import Machine, MachineError

__all__ = ["NumaTopology", "CpuHealth", "CpuState", "Machine", "MachineError"]
