"""Space-shared machine with NUMA-aware partition placement.

The machine is the enforcement half of the NANOS Resource Manager: the
scheduling policy decides *how many* processors each job gets, and the
machine decides *which* CPUs those are.  Placement follows the same
goals IRIX's affinity policy pursues — keep a job's threads where they
were, keep partitions compact on the NUMA fabric — but applied to
exclusive partitions, which is what makes the space-sharing policies
stable (few migrations, long bursts; see Table 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.machine.cpu import CpuState
from repro.machine.topology import NumaTopology
from repro.metrics.trace import TraceRecorder


class MachineError(RuntimeError):
    """Raised on invalid partition operations (overcommit, unknown job)."""


class Machine:
    """A multiprocessor divided into per-job exclusive partitions.

    Parameters
    ----------
    n_cpus:
        Number of CPUs usable for the workload (the paper uses 60 of
        the Origin 2000's 64, keeping the rest for system activity and
        the tracing tool).
    topology:
        NUMA topology; a default 2-CPUs-per-node layout is created when
        omitted.
    trace:
        Optional recorder receiving bursts, migrations and
        reallocation records.
    """

    def __init__(
        self,
        n_cpus: int = 60,
        topology: Optional[NumaTopology] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        self.topology = topology or NumaTopology(n_cpus)
        if self.topology.n_cpus != n_cpus:
            raise ValueError(
                f"topology covers {self.topology.n_cpus} CPUs, machine has {n_cpus}"
            )
        self.trace = trace
        self.cpus: List[CpuState] = [CpuState(i) for i in range(n_cpus)]
        self._partitions: Dict[int, Set[int]] = {}
        self._app_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_cpus(self) -> int:
        """Number of CPUs not owned by any partition."""
        return self.n_cpus - sum(len(p) for p in self._partitions.values())

    @property
    def allocated_cpus(self) -> int:
        """Number of CPUs currently inside partitions."""
        return self.n_cpus - self.free_cpus

    def allocation_of(self, job_id: int) -> int:
        """Partition size of *job_id* (0 if the job has no partition)."""
        return len(self._partitions.get(job_id, ()))

    def partition_of(self, job_id: int) -> List[int]:
        """Sorted CPU ids of the job's partition."""
        return sorted(self._partitions.get(job_id, ()))

    def running_jobs(self) -> List[int]:
        """Job ids that currently hold a partition."""
        return sorted(self._partitions)

    def allocations(self) -> Dict[int, int]:
        """Mapping of job id to partition size."""
        return {job: len(cpus) for job, cpus in self._partitions.items()}

    # ------------------------------------------------------------------
    # partition management
    # ------------------------------------------------------------------
    def start_job(self, job_id: int, app_name: str, procs: int, now: float) -> int:
        """Create a partition for a newly started job.

        Returns the number of CPUs actually granted (always == procs;
        the caller must not overcommit).
        """
        if job_id in self._partitions:
            raise MachineError(f"job {job_id} already has a partition")
        if procs < 1:
            raise MachineError(f"job {job_id}: initial allocation must be >= 1")
        if procs > self.free_cpus:
            raise MachineError(
                f"job {job_id}: requested {procs} CPUs but only {self.free_cpus} free"
            )
        self._partitions[job_id] = set()
        self._app_names[job_id] = app_name
        self._grow(job_id, procs, now)
        return procs

    def resize_job(self, job_id: int, procs: int, now: float) -> int:
        """Resize a partition to *procs* CPUs; returns thread migrations.

        Shrinking releases the least locality-valuable CPUs first;
        growing grabs free CPUs closest to the existing partition.
        Every CPU that leaves a still-running partition forces its
        kernel thread to migrate onto the remaining CPUs, so the
        migration count equals the number of CPUs removed (plus any
        CPUs acquired that were just vacated by another job, which the
        trace counts when the new owner is assigned).
        """
        if job_id not in self._partitions:
            raise MachineError(f"job {job_id} has no partition")
        if procs < 1:
            raise MachineError(f"job {job_id}: allocation must stay >= 1")
        current = len(self._partitions[job_id])
        if procs == current:
            return 0
        if procs > current:
            needed = procs - current
            if needed > self.free_cpus:
                raise MachineError(
                    f"job {job_id}: growing by {needed} but only "
                    f"{self.free_cpus} CPUs free"
                )
            self._grow(job_id, needed, now)
            return 0
        removed = self._shrink(job_id, current - procs, now)
        if self.trace is not None:
            self.trace.record_migrations(removed)
        return removed

    def finish_job(self, job_id: int, now: float) -> None:
        """Release the job's partition (job completed)."""
        if job_id not in self._partitions:
            raise MachineError(f"job {job_id} has no partition")
        for cpu_id in list(self._partitions[job_id]):
            self.cpus[cpu_id].assign(None, "", now, self.trace)
        del self._partitions[job_id]
        del self._app_names[job_id]

    def finalize(self, now: float) -> None:
        """Flush all in-progress bursts into the trace (end of run)."""
        for cpu in self.cpus:
            cpu.flush(now, self.trace)

    # ------------------------------------------------------------------
    # placement internals
    # ------------------------------------------------------------------
    def _free_cpu_ids(self) -> List[int]:
        return [cpu.cpu_id for cpu in self.cpus if cpu.idle]

    def _grow(self, job_id: int, count: int, now: float) -> None:
        partition = self._partitions[job_id]
        app_name = self._app_names[job_id]
        chosen = self._pick_free_cpus(partition, count)
        migrations = 0
        for cpu_id in chosen:
            previous = self.cpus[cpu_id].assign(job_id, app_name, now, self.trace)
            if previous is not None and previous != job_id:
                migrations += 1
            partition.add(cpu_id)
        if migrations and self.trace is not None:
            self.trace.record_migrations(migrations)

    def _pick_free_cpus(self, partition: Iterable[int], count: int) -> List[int]:
        """Choose free CPUs minimising distance to the partition."""
        partition = list(partition)
        free = self._free_cpu_ids()
        if len(free) < count:
            raise MachineError(f"need {count} free CPUs, have {len(free)}")
        if not partition:
            # New partition: take the most compact run of free CPUs by
            # sorting on node and preferring whole nodes.
            free.sort(key=lambda c: (self.topology.node_of(c), c))
            return free[:count]

        def affinity(cpu_id: int) -> tuple:
            dist = min(self.topology.distance(cpu_id, p) for p in partition)
            return (dist, cpu_id)

        free.sort(key=affinity)
        return free[:count]

    def _shrink(self, job_id: int, count: int, now: float) -> int:
        """Release *count* CPUs from the partition; returns the count."""
        partition = self._partitions[job_id]
        victims = self._pick_victims(partition, count)
        for cpu_id in victims:
            self.cpus[cpu_id].assign(None, "", now, self.trace)
            partition.remove(cpu_id)
        return len(victims)

    def _pick_victims(self, partition: Set[int], count: int) -> List[int]:
        """Release CPUs from the least-populated nodes first.

        Giving back stragglers keeps the remaining partition compact,
        preserving data locality for the job that shrinks.
        """
        by_node: Dict[int, List[int]] = {}
        for cpu_id in partition:
            by_node.setdefault(self.topology.node_of(cpu_id), []).append(cpu_id)
        ordered_nodes = sorted(by_node, key=lambda n: (len(by_node[n]), -n))
        victims: List[int] = []
        for node in ordered_nodes:
            for cpu_id in sorted(by_node[node], reverse=True):
                if len(victims) == count:
                    return victims
                victims.append(cpu_id)
        return victims
