"""Space-shared machine with NUMA-aware partition placement.

The machine is the enforcement half of the NANOS Resource Manager: the
scheduling policy decides *how many* processors each job gets, and the
machine decides *which* CPUs those are.  Placement follows the same
goals IRIX's affinity policy pursues — keep a job's threads where they
were, keep partitions compact on the NUMA fabric — but applied to
exclusive partitions, which is what makes the space-sharing policies
stable (few migrations, long bursts; see Table 2 of the paper).

Per-CPU ownership/burst state lives in one packed
:class:`repro.sim.columns.CpuColumns` store; ``self.cpus`` holds
lightweight views for scalar access.  The partition operations drive
the *batched* column kernels — one ``seize``/``release`` call per
event instead of one ``CpuState.assign`` call per CPU — processing
ids in exactly the order the old per-CPU loops did, so trace contents
and books stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.machine.cpu import CpuHealth, CpuState, burst_emitter
from repro.machine.topology import NumaTopology
from repro.metrics.trace import TraceRecorder
from repro.sim.columns import HEALTH_OFFLINE, CpuColumns


class MachineError(RuntimeError):
    """Raised on invalid partition operations (overcommit, unknown job)."""


class Machine:
    """A multiprocessor divided into per-job exclusive partitions.

    Parameters
    ----------
    n_cpus:
        Number of CPUs usable for the workload (the paper uses 60 of
        the Origin 2000's 64, keeping the rest for system activity and
        the tracing tool).
    topology:
        NUMA topology; a default 2-CPUs-per-node layout is created when
        omitted.
    trace:
        Optional recorder receiving bursts, migrations and
        reallocation records.
    """

    def __init__(
        self,
        n_cpus: int = 60,
        topology: Optional[NumaTopology] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        self.topology = topology or NumaTopology(n_cpus)
        if self.topology.n_cpus != n_cpus:
            raise ValueError(
                f"topology covers {self.topology.n_cpus} CPUs, machine has {n_cpus}"
            )
        self.trace = trace
        #: burst-emission callback for the column kernels (None when
        #: untraced); a closure, so derived — rebuilt on unpickle.
        self._emit = burst_emitter(trace)
        self._cols = CpuColumns(n_cpus)
        self.cpus: List[CpuState] = [
            CpuState(i, self._cols, i) for i in range(n_cpus)
        ]
        self._partitions: Dict[int, Set[int]] = {}
        self._app_names: Dict[int, str] = {}
        #: speed factor per degraded NUMA node (absent = full speed)
        self._node_speed: Dict[int, float] = {}
        # Incrementally maintained views of the CPU list, so the hot
        # queries (free_cpus / healthy_cpus, every allocation decision)
        # are O(1) instead of O(n_cpus) scans.  Invariants are checked
        # against the ground truth by check_invariants().
        self._free: Set[int] = set(range(n_cpus))
        self._n_offline = 0
        self._n_allocated = 0
        #: cpu id -> NUMA node, precomputed for the placement hot path
        self._node_of: List[int] = [
            self.topology.node_of(i) for i in range(n_cpus)
        ]
        # With node ids monotone in cpu id (true for the default
        # layout), sorting free CPUs by (node, id) is the identity on
        # an id-sorted list, so new-partition placement can skip the
        # sort entirely.
        self._nodes_monotonic = all(
            self._node_of[i] <= self._node_of[i + 1] for i in range(n_cpus - 1)
        )
        #: per-node hypercube-distance rows, built lazily (derived)
        self._dist_rows: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # pickling: canonical form for the set-valued books
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # Small-int sets iterate in insertion-history order (hash-slot
        # collisions resolve by arrival), so pickling them directly
        # makes snapshot bytes depend on how a partition was assembled
        # and breaks the checkpoint layer's save→restore→save
        # fixed-point contract.  Sorted lists are the canonical form.
        # The per-CPU views and the distance cache are derived state:
        # dropping them shrinks the envelope and they rebuild exactly.
        state = dict(self.__dict__)
        del state["cpus"]
        del state["_dist_rows"]
        del state["_emit"]
        state["_free"] = sorted(self._free)
        state["_partitions"] = {
            job: sorted(cpus) for job, cpus in self._partitions.items()
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        state["_free"] = set(state["_free"])
        state["_partitions"] = {
            job: set(cpus) for job, cpus in state["_partitions"].items()
        }
        self.__dict__.update(state)
        self._dist_rows = {}
        self._emit = burst_emitter(self.trace)
        self.cpus = [
            CpuState(i, self._cols, i) for i in range(self.n_cpus)
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def healthy_cpus(self) -> int:
        """CPUs the allocator may still use (ONLINE or DEGRADED)."""
        return self.n_cpus - self._n_offline

    @property
    def free_cpus(self) -> int:
        """Number of allocatable CPUs not owned by any partition."""
        return len(self._free)

    @property
    def allocated_cpus(self) -> int:
        """Number of CPUs currently inside partitions."""
        return self._n_allocated

    def allocation_of(self, job_id: int) -> int:
        """Partition size of *job_id* (0 if the job has no partition)."""
        return len(self._partitions.get(job_id, ()))

    def partition_of(self, job_id: int) -> List[int]:
        """Sorted CPU ids of the job's partition."""
        return sorted(self._partitions.get(job_id, ()))

    def running_jobs(self) -> List[int]:
        """Job ids that currently hold a partition."""
        return sorted(self._partitions)

    def allocations(self) -> Dict[int, int]:
        """Mapping of job id to partition size."""
        return {job: len(cpus) for job, cpus in self._partitions.items()}

    # ------------------------------------------------------------------
    # partition management
    # ------------------------------------------------------------------
    def start_job(self, job_id: int, app_name: str, procs: int, now: float) -> int:
        """Create a partition for a newly started job.

        Returns the number of CPUs actually granted (always == procs;
        the caller must not overcommit).
        """
        if job_id in self._partitions:
            raise MachineError(
                f"job {job_id} already has a partition "
                f"{sorted(self._partitions[job_id])}"
            )
        if procs < 1:
            raise MachineError(f"job {job_id}: initial allocation must be >= 1")
        if procs > self.free_cpus:
            raise MachineError(
                f"job {job_id}: requested {procs} CPUs but only {self.free_cpus} "
                f"free ({self.healthy_cpus} healthy of {self.n_cpus}; "
                f"partitions {self.allocations()})"
            )
        self._partitions[job_id] = set()
        self._app_names[job_id] = app_name
        self._grow(job_id, procs, now)
        return procs

    def resize_job(self, job_id: int, procs: int, now: float) -> int:
        """Resize a partition to *procs* CPUs; returns thread migrations.

        Shrinking releases the least locality-valuable CPUs first;
        growing grabs free CPUs closest to the existing partition.
        Every CPU that leaves a still-running partition forces its
        kernel thread to migrate onto the remaining CPUs, so the
        migration count equals the number of CPUs removed (plus any
        CPUs acquired that were just vacated by another job, which the
        trace counts when the new owner is assigned).
        """
        if job_id not in self._partitions:
            raise MachineError(
                f"job {job_id} has no partition to resize "
                f"(jobs holding partitions: {self.running_jobs()})"
            )
        if procs < 1:
            raise MachineError(
                f"job {job_id}: allocation must stay >= 1, got {procs} "
                f"(current partition {self.partition_of(job_id)})"
            )
        current = len(self._partitions[job_id])
        if procs == current:
            return 0
        if procs > current:
            needed = procs - current
            if needed > self.free_cpus:
                raise MachineError(
                    f"job {job_id}: growing partition "
                    f"{self.partition_of(job_id)} by {needed} but only "
                    f"{self.free_cpus} CPUs free "
                    f"({self.healthy_cpus} healthy of {self.n_cpus})"
                )
            self._grow(job_id, needed, now)
            return 0
        removed = self._shrink(job_id, current - procs, now)
        if self.trace is not None:
            self.trace.record_migrations(removed)
        return removed

    def finish_job(self, job_id: int, now: float) -> None:
        """Release the job's partition (job completed)."""
        if job_id not in self._partitions:
            raise MachineError(
                f"job {job_id} has no partition to release "
                f"(jobs holding partitions: {self.running_jobs()})"
            )
        released = list(self._partitions[job_id])
        self._cols.release(released, now, self._emit)
        self._n_allocated -= len(released)
        if self._n_offline:
            health = self._cols.health
            self._free.update(
                cpu_id for cpu_id in released if health[cpu_id] != HEALTH_OFFLINE
            )
        else:
            self._free.update(released)
        del self._partitions[job_id]
        del self._app_names[job_id]

    def finalize(self, now: float) -> None:
        """Flush all in-progress bursts into the trace (end of run)."""
        self._cols.flush_all(now, self._emit)
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify the incremental books against the CPU ground truth.

        Recomputes the free set, offline count and allocation count by
        scanning ``self.cpus`` / ``self._partitions`` and raises
        :class:`MachineError` on any divergence.  Cheap enough to call
        once per run (finalize) and from tests after every mutation.
        """
        true_offline = sum(1 for c in self.cpus if not c.allocatable)
        true_free = {
            c.cpu_id for c in self.cpus if c.idle and c.allocatable
        }
        true_allocated = sum(len(p) for p in self._partitions.values())
        owned = set()
        for job_id, partition in self._partitions.items():
            for cpu_id in partition:
                if self.cpus[cpu_id].owner != job_id:
                    raise MachineError(
                        f"invariant violation: CPU {cpu_id} in partition of "
                        f"job {job_id} but owned by {self.cpus[cpu_id].owner}"
                    )
                if cpu_id in owned:
                    raise MachineError(
                        f"invariant violation: CPU {cpu_id} in two partitions"
                    )
                owned.add(cpu_id)
        if self._n_offline != true_offline:
            raise MachineError(
                f"invariant violation: offline count {self._n_offline} != "
                f"actual {true_offline}"
            )
        if self._n_allocated != true_allocated:
            raise MachineError(
                f"invariant violation: allocated count {self._n_allocated} != "
                f"actual {true_allocated}"
            )
        if self._free != true_free:
            raise MachineError(
                f"invariant violation: free set {sorted(self._free)} != "
                f"actual {sorted(true_free)}"
            )

    # ------------------------------------------------------------------
    # fault operations (used by repro.faults via the resource manager)
    # ------------------------------------------------------------------
    def cpu_health(self, cpu_id: int) -> CpuHealth:
        """Health of one CPU (IndexError on bad id)."""
        return self.cpus[cpu_id].health

    def offline_cpus(self) -> List[int]:
        """Ids of CPUs currently OFFLINE."""
        return [c.cpu_id for c in self.cpus if c.health is CpuHealth.OFFLINE]

    def fail_cpu(self, cpu_id: int, now: float) -> Optional[int]:
        """Take one CPU OFFLINE; returns the job that owned it (if any).

        The CPU is evicted from its partition immediately (its burst is
        closed), so the machine's books never show a job on a failed
        CPU.  The caller — normally the resource manager — decides how
        to repair the shrunken partition.

        Raises
        ------
        MachineError
            If this is the last allocatable CPU: a machine with zero
            healthy CPUs cannot make progress, and refusing loudly is
            better than deadlocking the workload.
        """
        if not 0 <= cpu_id < self.n_cpus:
            raise MachineError(f"no such CPU {cpu_id} (machine has {self.n_cpus})")
        cpu = self.cpus[cpu_id]
        if cpu.health is CpuHealth.OFFLINE:
            return None
        if self.healthy_cpus <= 1:
            raise MachineError(
                f"cannot take CPU {cpu_id} offline: it is the last "
                f"allocatable CPU (offline: {self.offline_cpus()})"
            )
        owner = cpu.owner
        if owner is not None:
            cpu.assign(None, "", now, self.trace)
            self._partitions[owner].discard(cpu_id)
            self._n_allocated -= 1
            if self.trace is not None:
                self.trace.record_migrations(1)
        cpu.health = CpuHealth.OFFLINE
        self._n_offline += 1
        self._free.discard(cpu_id)
        return owner

    def repair_cpu(self, cpu_id: int, now: float) -> bool:
        """Bring a failed/degraded CPU back ONLINE; True if state changed."""
        if not 0 <= cpu_id < self.n_cpus:
            raise MachineError(f"no such CPU {cpu_id} (machine has {self.n_cpus})")
        cpu = self.cpus[cpu_id]
        if cpu.health is CpuHealth.ONLINE:
            return False
        was_offline = cpu.health is CpuHealth.OFFLINE
        node = self.topology.node_of(cpu_id)
        cpu.health = (
            CpuHealth.DEGRADED if node in self._node_speed else CpuHealth.ONLINE
        )
        if was_offline:
            self._n_offline -= 1
            if cpu.idle:
                self._free.add(cpu_id)
        return True

    def degrade_node(self, node: int, factor: float, now: float) -> List[int]:
        """Mark a NUMA node DEGRADED at *factor* speed; returns its CPUs.

        OFFLINE CPUs on the node stay OFFLINE (a repair will land them
        in DEGRADED while the node is slow).
        """
        if not 0.0 < factor <= 1.0:
            raise MachineError(f"node speed factor must be in (0, 1], got {factor}")
        cpus = self.topology.cpus_of_node(node)
        self._node_speed[node] = factor
        for cpu_id in cpus:
            if self.cpus[cpu_id].health is CpuHealth.ONLINE:
                self.cpus[cpu_id].health = CpuHealth.DEGRADED
        return cpus

    def restore_node(self, node: int, now: float) -> List[int]:
        """Restore a degraded NUMA node to full speed; returns its CPUs."""
        cpus = self.topology.cpus_of_node(node)
        self._node_speed.pop(node, None)
        for cpu_id in cpus:
            if self.cpus[cpu_id].health is CpuHealth.DEGRADED:
                self.cpus[cpu_id].health = CpuHealth.ONLINE
        return cpus

    def partition_speed_factor(self, job_id: int) -> float:
        """Speed factor of a job's partition (1.0 = full speed).

        A parallel iteration advances at the pace of its slowest
        thread, so the partition runs at the *minimum* factor of its
        CPUs' nodes.
        """
        if not self._node_speed:
            return 1.0
        partition = self._partitions.get(job_id)
        if not partition:
            return 1.0
        return min(
            self._node_speed.get(self.topology.node_of(cpu_id), 1.0)
            for cpu_id in partition
        )

    # ------------------------------------------------------------------
    # placement internals
    # ------------------------------------------------------------------
    def _free_cpu_ids(self) -> List[int]:
        # Sorted for determinism: callers rely on ascending-id order to
        # break placement ties exactly as the old full scan did.
        return sorted(self._free)

    def _dist_row(self, node: int) -> List[int]:
        """Hypercube hop count from *node* to every node (cached)."""
        row = self._dist_rows.get(node)
        if row is None:
            n_nodes = self.topology.n_nodes
            row = [bin(node ^ other).count("1") for other in range(n_nodes)]
            self._dist_rows[node] = row
        return row

    def _grow(self, job_id: int, count: int, now: float) -> None:
        """Grow the partition by *count* CPUs closest to it.

        Placement picks from the free set in ascending-id order with
        NUMA-affinity ranking; the batched ``seize`` kernel then
        assigns all chosen CPUs in one call.  All chosen CPUs come
        from the free set, which only ever holds idle allocatable
        CPUs, so no burst closes and no migration is possible here;
        seize() enforces idleness.
        """
        partition = self._partitions[job_id]
        free = sorted(self._free)
        if len(free) < count:
            raise MachineError(
                f"job {job_id}: need {count} free CPUs, have {len(free)} "
                f"(partition {sorted(partition)}, free {free}, "
                f"offline {self.offline_cpus()})"
            )
        node_of = self._node_of
        if not partition:
            # New partition: take the most compact run of free CPUs by
            # sorting on node and preferring whole nodes.  With node
            # ids monotone in cpu id (the default layout) the
            # id-sorted list already is that order.
            if not self._nodes_monotonic:
                free.sort(key=lambda c: (node_of[c], c))
            chosen = free[:count]
        else:
            # Distance from a candidate to the partition only depends
            # on NUMA nodes, so compute the minimum hop count once per
            # node from the cached distance rows (0 on-node; two
            # distinct nodes always differ in >= 1 bit, matching the
            # old max(dist, 1)).  The decorated sort reproduces the
            # old (distance, cpu_id) affinity order without a
            # per-element key callback.
            part_nodes = {node_of[p] for p in partition}
            rows = [
                self._dist_row(node) for node in part_nodes  # repro: allow(DET105): order only feeds min(), which is order-independent
            ]
            dmin: Dict[int, int] = {}
            decorated = []
            for cpu_id in free:
                node = node_of[cpu_id]
                dist = dmin.get(node)
                if dist is None:
                    dist = dmin[node] = min(row[node] for row in rows)
                decorated.append((dist, cpu_id))
            decorated.sort()
            chosen = [pair[1] for pair in decorated[:count]]
        self._cols.seize(chosen, job_id, self._app_names[job_id], now)
        partition.update(chosen)
        self._free.difference_update(chosen)
        self._n_allocated += count

    def _shrink(self, job_id: int, count: int, now: float) -> int:
        """Release *count* CPUs from the least-populated nodes first.

        Giving back stragglers keeps the remaining partition compact,
        preserving data locality for the job that shrinks.  One
        composite-key sort — (node population, node id desc, cpu id
        desc) — reproduces the old nodes-then-cpus nested victim
        ordering; the batched ``release`` kernel closes the victims'
        bursts in that exact order.
        """
        partition = self._partitions[job_id]
        node_of = self._node_of
        population: Dict[int, int] = {}
        decorated = []
        for cpu_id in partition:
            node = node_of[cpu_id]
            population[node] = population.get(node, 0) + 1
            decorated.append((node, cpu_id))
        keyed = [
            (population[node], -node, -cpu_id) for node, cpu_id in decorated
        ]
        keyed.sort()
        victims = [-key[2] for key in keyed[:count]]
        self._cols.release(victims, now, self._emit)
        partition.difference_update(victims)
        self._n_allocated -= count
        if self._n_offline:
            health = self._cols.health
            self._free.update(
                cpu_id for cpu_id in victims if health[cpu_id] != HEALTH_OFFLINE
            )
        else:
            self._free.update(victims)
        return count
