"""Memory-locality model: the cost of unstable partitions.

The paper's §5.1.1 argues that scheduling stability "is very important
to help the rest of mechanisms of the operating system (such as the
memory migration) to do their work efficiently", and its conclusions
repeat that "a high number of reallocations degrades the application
and the system performance".  On the CC-NUMA Origin 2000 the
mechanism is physical: a job's pages live on the nodes of the CPUs it
ran on; when the partition changes, remote accesses dominate until the
automatic page migration (``_DSM_MIGRATION=ALL_ON`` in the paper's
IRIX configuration) moves the working set over.

:class:`LocalityModel` captures exactly that:

* each running job has a **locality** value in [0, 1] (1 = fully
  local working set);
* a reallocation drops locality to the fraction of the new partition
  that was already owned (keeping CPUs keeps pages local);
* locality then recovers exponentially toward 1 with the page-
  migration time constant;
* a job's execution rate is scaled by
  ``1 - max_slowdown * (1 - locality)``.

Stable policies (PDPA, Equipartition) barely notice; policies that
reshuffle the machine on every noisy report (Equal_efficiency, the
McCann Dynamic model) pay a sustained locality tax — the quantitative
form of the paper's critique.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Set


@dataclass(frozen=True)
class LocalityConfig:
    """Parameters of the locality model.

    Attributes
    ----------
    max_slowdown:
        Execution-rate loss at locality 0 (e.g. 0.15 = 15% slower
        with a fully remote working set).
    migration_tau:
        Time constant (seconds) of the exponential locality recovery
        driven by automatic page migration.
    floor:
        Lower bound on locality right after a reallocation; even a
        fully displaced partition finds some of its data in caches or
        interleaved pages.
    """

    max_slowdown: float = 0.15
    migration_tau: float = 5.0
    floor: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_slowdown < 1.0:
            raise ValueError(f"max_slowdown must be in [0, 1), got {self.max_slowdown}")
        if self.migration_tau <= 0:
            raise ValueError(f"migration_tau must be positive, got {self.migration_tau}")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError(f"floor must be in [0, 1], got {self.floor}")


@dataclass
class _JobLocality:
    """Locality trajectory of one job: value at a reference time."""

    value: float
    since: float


class LocalityModel:
    """Tracks per-job memory locality and the resulting speed factor."""

    def __init__(self, config: LocalityConfig = LocalityConfig()) -> None:
        self.config = config
        self._jobs: Dict[int, _JobLocality] = {}

    # ------------------------------------------------------------------
    # lifecycle hooks (called by the resource manager)
    # ------------------------------------------------------------------
    def on_job_start(self, job_id: int, now: float) -> None:
        """A new job starts with a cold but compact working set."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already tracked")
        self._jobs[job_id] = _JobLocality(value=1.0, since=now)

    def on_job_finish(self, job_id: int) -> None:
        """Forget a completed job (unknown ids are tolerated)."""
        self._jobs.pop(job_id, None)

    def on_reallocation(
        self,
        job_id: int,
        old_cpus: Iterable[int],
        new_cpus: Iterable[int],
        now: float,
    ) -> None:
        """Account a partition change.

        Locality drops to the retained fraction of the *new* partition
        (CPUs kept hold local pages; newly acquired ones do not),
        scaled by the current locality.
        """
        if job_id not in self._jobs:
            raise KeyError(f"job {job_id} is not tracked")
        old_set: Set[int] = set(old_cpus)
        new_set: Set[int] = set(new_cpus)
        if not new_set:
            return
        retained = len(old_set & new_set) / len(new_set)
        current = self.locality(job_id, now)
        new_value = max(self.config.floor, current * retained)
        self._jobs[job_id] = _JobLocality(value=new_value, since=now)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def locality(self, job_id: int, now: float) -> float:
        """Current locality of a job, with recovery applied."""
        state = self._jobs.get(job_id)
        if state is None:
            return 1.0
        elapsed = max(0.0, now - state.since)
        gap = 1.0 - state.value
        return 1.0 - gap * math.exp(-elapsed / self.config.migration_tau)

    def speed_factor(self, job_id: int, now: float) -> float:
        """Execution-rate multiplier in (1 - max_slowdown, 1]."""
        locality = self.locality(job_id, now)
        return 1.0 - self.config.max_slowdown * (1.0 - locality)

    @property
    def tracked_jobs(self) -> int:
        """Number of jobs currently tracked."""
        return len(self._jobs)
