"""Response-time / execution-time aggregation.

The paper's evaluation reports, "for each workload, [...] the average
response time and the average execution time per scheduling policy and
application class".  This module turns the raw per-job timestamps into
those aggregates and formats them as plain-text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.qs.job import Job, JobState


def fold_sum(values: Iterable[float]) -> float:
    """Strict left fold of floats from 0.0 — the repo's one summation.

    Every aggregate that must be reproducible by a streaming fold
    (:class:`repro.metrics.streaming.StreamingStats` accumulates
    ``total += x`` one sample at a time) goes through this helper
    instead of the ``sum`` builtin: CPython 3.12+ sums floats with
    Neumaier compensation, which is *not* bit-identical to the left
    fold, so the builtin would make closed-run summaries diverge from
    the streamed fold by a few ulps depending on interpreter version.
    """
    acc = 0.0
    for value in values:
        acc = acc + value
    return acc


@dataclass(frozen=True)
class JobRecord:
    """Immutable outcome of one completed job."""

    job_id: int
    app_name: str
    app_class: str
    request: int
    submit_time: float
    start_time: float
    end_time: float
    #: executions killed by faults before the successful one
    attempts: int = 0

    @property
    def wait_time(self) -> float:
        """Queueing delay (start - submit)."""
        return self.start_time - self.submit_time

    @property
    def execution_time(self) -> float:
        """Running time (end - start)."""
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        """Total time in the system (end - submit)."""
        return self.end_time - self.submit_time

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable, exact float round trip)."""
        return {
            "job_id": self.job_id,
            "app_name": self.app_name,
            "app_class": self.app_class,
            "request": self.request,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        """Build a record from a finished :class:`Job`."""
        if job.state is not JobState.DONE:
            raise ValueError(f"job {job.job_id} has not completed")
        assert job.start_time is not None and job.end_time is not None
        # Wait time spans submission to the *first* start, so a job
        # that was killed and retried still reports its true queueing
        # delay (first_start_time == start_time on a clean run).
        first_start = (
            job.first_start_time if job.first_start_time is not None
            else job.start_time
        )
        return cls(
            job_id=job.job_id,
            app_name=job.app_name,
            app_class=str(job.spec.app_class),
            request=job.request if job.request is not None else 0,
            submit_time=job.submit_time,
            start_time=first_start,
            end_time=job.end_time,
            attempts=job.attempts,
        )


@dataclass(frozen=True)
class ClassSummary:
    """Aggregates for one application within one workload run."""

    app_name: str
    count: int
    mean_response_time: float
    mean_execution_time: float
    mean_wait_time: float
    max_response_time: float

    @classmethod
    def from_records(cls, app_name: str, records: Sequence[JobRecord]) -> "ClassSummary":
        if not records:
            raise ValueError(f"no records for application {app_name!r}")
        n = len(records)
        return cls(
            app_name=app_name,
            count=n,
            mean_response_time=fold_sum(r.response_time for r in records) / n,
            mean_execution_time=fold_sum(r.execution_time for r in records) / n,
            mean_wait_time=fold_sum(r.wait_time for r in records) / n,
            max_response_time=max(r.response_time for r in records),
        )


@dataclass
class WorkloadResult:
    """Everything measured from one workload execution.

    Attributes
    ----------
    policy:
        Name of the scheduling policy that ran the workload.
    load:
        Nominal load fraction the workload was generated for.
    records:
        One :class:`JobRecord` per completed job.
    makespan:
        Time at which the last job completed.
    migrations:
        Total kernel-thread migrations (Table 2 metric).
    avg_burst_time:
        Average CPU burst duration in seconds (Table 2 metric).
    avg_bursts_per_cpu:
        Average number of bursts executed per CPU (Table 2 metric).
    reallocations:
        Number of allocation changes applied to running jobs.
    max_mpl:
        Highest multiprogramming level observed.
    cpu_utilization:
        Fraction of machine capacity used over the makespan.
    failed:
        Jobs that ended FAILED (retry budget exhausted); always 0
        without fault injection.
    """

    policy: str
    load: float
    records: List[JobRecord] = field(default_factory=list)
    makespan: float = 0.0
    migrations: int = 0
    avg_burst_time: float = 0.0
    avg_bursts_per_cpu: float = 0.0
    reallocations: int = 0
    max_mpl: int = 0
    cpu_utilization: float = 0.0
    #: jobs that exhausted their retry budget under fault injection
    failed: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the sweep cache and worker transport.

        The encoding is exact (floats survive the JSON round trip
        bit-for-bit), so a result rebuilt with :meth:`from_dict` is
        indistinguishable from the original.
        """
        return {
            "policy": self.policy,
            "load": self.load,
            "records": [r.to_dict() for r in self.records],
            "makespan": self.makespan,
            "migrations": self.migrations,
            "avg_burst_time": self.avg_burst_time,
            "avg_bursts_per_cpu": self.avg_bursts_per_cpu,
            "reallocations": self.reallocations,
            "max_mpl": self.max_mpl,
            "cpu_utilization": self.cpu_utilization,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadResult":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        records = [JobRecord.from_dict(r) for r in payload.pop("records", [])]
        return cls(records=records, **payload)  # type: ignore[arg-type]

    def by_app(self) -> Dict[str, ClassSummary]:
        """Per-application summaries, keyed by application name."""
        return summarize_by_app(self.records)

    def summary(self, app_name: str) -> ClassSummary:
        """Summary for one application (KeyError if absent)."""
        summaries = self.by_app()
        if app_name not in summaries:
            raise KeyError(
                f"no jobs of {app_name!r} in this workload; "
                f"have {sorted(summaries)}"
            )
        return summaries[app_name]

    @property
    def total_execution_time(self) -> float:
        """Workload completion time measured from first submission.

        This is the "Workload Exec. time" column of Table 3: the
        elapsed time needed to execute the complete workload.
        """
        if not self.records:
            return 0.0
        first_submit = min(r.submit_time for r in self.records)
        return self.makespan - first_submit

    @property
    def mean_response_time(self) -> float:
        """Mean response time over every job in the workload."""
        if not self.records:
            return 0.0
        return fold_sum(r.response_time for r in self.records) / len(self.records)

    @property
    def mean_bounded_slowdown(self) -> float:
        """Mean bounded slowdown over every job (tau = 10 s)."""
        if not self.records:
            return 0.0
        from repro.metrics.statistics import mean_bounded_slowdown

        return mean_bounded_slowdown(self.records)


def summarize_by_app(records: Iterable[JobRecord]) -> Dict[str, ClassSummary]:
    """Group records by application name and summarise each group."""
    groups: Dict[str, List[JobRecord]] = {}
    for record in records:
        groups.setdefault(record.app_name, []).append(record)
    return {
        name: ClassSummary.from_records(name, group)
        for name, group in groups.items()
    }


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a plain-text table (used by benches and the CLI).

    Numeric cells are right-aligned and floats are shown with one
    decimal, matching the precision the paper reports.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
