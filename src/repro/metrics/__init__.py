"""Measurement, tracing and reporting.

This package plays the role of the paper's measurement tooling:

* :mod:`repro.metrics.trace` — the per-CPU activity trace produced by
  the ``scpus`` tracing tool in the paper,
* :mod:`repro.metrics.paraver` — the analyses the authors ran with the
  Paraver tool (migration counts, burst statistics, execution views),
* :mod:`repro.metrics.stats` — response-time / execution-time
  aggregation per application class.
"""

from repro.metrics.stats import (
    ClassSummary,
    JobRecord,
    WorkloadResult,
    fold_sum,
    format_table,
    summarize_by_app,
)
from repro.metrics.streaming import ClassFold, Reservoir, StreamingStats
from repro.metrics.trace import (
    Burst,
    FaultRecord,
    MplSample,
    ReallocationRecord,
    TraceRecorder,
)
from repro.metrics.faults import FaultStats, fault_statistics
from repro.metrics.paraver import (
    BurstStatistics,
    burst_statistics,
    execution_view,
    mpl_timeline,
)
from repro.metrics.prv import PrvTrace, export_prv, parse_prv
from repro.metrics.statistics import (
    Summary,
    bounded_slowdown,
    confidence_interval,
    percentile,
    summary,
)
from repro.metrics.timeline import (
    AllocationStats,
    allocation_stats,
    allocation_stats_by_app,
    capacity_timeline,
    utilization_timeline,
)

__all__ = [
    "Burst",
    "FaultRecord",
    "MplSample",
    "ReallocationRecord",
    "TraceRecorder",
    "FaultStats",
    "fault_statistics",
    "BurstStatistics",
    "burst_statistics",
    "execution_view",
    "mpl_timeline",
    "JobRecord",
    "ClassSummary",
    "WorkloadResult",
    "summarize_by_app",
    "fold_sum",
    "format_table",
    "ClassFold",
    "Reservoir",
    "StreamingStats",
    "PrvTrace",
    "export_prv",
    "parse_prv",
    "Summary",
    "bounded_slowdown",
    "confidence_interval",
    "percentile",
    "summary",
    "AllocationStats",
    "allocation_stats",
    "allocation_stats_by_app",
    "capacity_timeline",
    "utilization_timeline",
]
