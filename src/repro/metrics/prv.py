"""Paraver trace export (.prv).

The paper's workload executions were recorded with ``scpus`` and
visualised with Paraver.  This module serialises a
:class:`~repro.metrics.trace.TraceRecorder` into the Paraver trace
format so the execution views can be inspected with the real tool:

* a header line (``#Paraver ...``) describing the machine,
* **state records** — ``1:cpu:appl:task:thread:begin:end:state`` —
  one per CPU burst (state 1 = running),
* **event records** — ``2:cpu:appl:task:thread:time:type:value`` —
  one per reallocation, with the event type
  :data:`EVENT_ALLOCATION` and the new allocation as the value.

Times are written in microseconds, as Paraver expects.  A minimal
parser is provided for round-trip testing and for loading traces back
into analysis scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.metrics.trace import Burst, TraceRecorder

#: Paraver state value for "running".
STATE_RUNNING = 1
#: Event type used for allocation-change events.
EVENT_ALLOCATION = 40000001

_US = 1_000_000  # seconds -> microseconds


def _appl_numbers(trace: TraceRecorder) -> Dict[int, int]:
    """Stable 1-based Paraver application ids for the trace's jobs."""
    job_ids = sorted(
        {b.job_id for b in trace.bursts}
        | {r.job_id for r in trace.reallocations}
    )
    return {job_id: i + 1 for i, job_id in enumerate(job_ids)}


def export_prv(trace: TraceRecorder, title: str = "pdpa-sim") -> str:
    """Serialise *trace* as Paraver trace text."""
    appl = _appl_numbers(trace)
    ftime = int(round(trace.horizon * _US))
    n_appl = max(len(appl), 1)
    appl_list = ":".join("1(1:1)" for _ in range(n_appl))
    header = (
        f"#Paraver ({title}):{ftime}_us:1({trace.n_cpus}):{n_appl}:{appl_list}"
    )
    lines = [header]
    records: List[Tuple[int, str]] = []
    for burst in trace.bursts:
        begin = int(round(burst.start * _US))
        end = int(round(burst.end * _US))
        records.append((
            begin,
            f"1:{burst.cpu + 1}:{appl[burst.job_id]}:1:1:{begin}:{end}:{STATE_RUNNING}",
        ))
    for realloc in trace.reallocations:
        time = int(round(realloc.time * _US))
        records.append((
            time,
            f"2:0:{appl[realloc.job_id]}:1:1:{time}:{EVENT_ALLOCATION}:{realloc.new_procs}",
        ))
    records.sort(key=lambda item: item[0])
    lines.extend(text for _, text in records)
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class PrvState:
    """Parsed state record (a CPU burst)."""

    cpu: int
    appl: int
    begin: float
    end: float
    state: int


@dataclass(frozen=True)
class PrvEvent:
    """Parsed event record."""

    cpu: int
    appl: int
    time: float
    event_type: int
    value: int


@dataclass
class PrvTrace:
    """A parsed .prv trace."""

    n_cpus: int
    n_appl: int
    ftime: float
    states: List[PrvState]
    events: List[PrvEvent]


def parse_prv(text: str) -> PrvTrace:
    """Parse Paraver trace text produced by :func:`export_prv`.

    Raises
    ------
    ValueError
        On a missing/malformed header or malformed records.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("#Paraver"):
        raise ValueError("not a Paraver trace: missing #Paraver header")
    header = lines[0]
    try:
        # #Paraver (title):FTIME_us:1(NCPUS):NAPPL:...
        fields = header.split(":")
        ftime = int(fields[1].split("_")[0]) / _US
        n_cpus = int(fields[2].split("(")[1].rstrip(")"))
        n_appl = int(fields[3])
    except (IndexError, ValueError) as exc:
        raise ValueError(f"malformed Paraver header: {header!r}") from exc

    states: List[PrvState] = []
    events: List[PrvEvent] = []
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split(":")
        kind = parts[0]
        try:
            if kind == "1":
                if len(parts) != 8:
                    raise ValueError("state record needs 8 fields")
                states.append(PrvState(
                    cpu=int(parts[1]) - 1,
                    appl=int(parts[2]),
                    begin=int(parts[5]) / _US,
                    end=int(parts[6]) / _US,
                    state=int(parts[7]),
                ))
            elif kind == "2":
                if len(parts) != 8:
                    raise ValueError("event record needs 8 fields")
                events.append(PrvEvent(
                    cpu=int(parts[1]),
                    appl=int(parts[2]),
                    time=int(parts[5]) / _US,
                    event_type=int(parts[6]),
                    value=int(parts[7]),
                ))
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return PrvTrace(
        n_cpus=n_cpus, n_appl=n_appl, ftime=ftime, states=states, events=events
    )


def states_to_bursts(prv: PrvTrace, app_names: Dict[int, str]) -> List[Burst]:
    """Rebuild :class:`Burst` records from a parsed trace.

    ``app_names`` maps Paraver application numbers back to names; the
    appl number is reused as the job id.
    """
    bursts = []
    for state in prv.states:
        bursts.append(Burst(
            cpu=state.cpu,
            job_id=state.appl,
            app_name=app_names.get(state.appl, f"appl{state.appl}"),
            start=state.begin,
            end=state.end,
        ))
    return bursts
