"""Per-CPU activity tracing.

The paper monitors workload executions with ``scpus``, a tracing tool
whose output is visualised with Paraver: "Each line represents the
activity of a CPU and each color represents a different application."

:class:`TraceRecorder` is our equivalent trace file.  The machine model
appends a :class:`Burst` every time a CPU switches between
applications (or idles), and synthetic burst statistics for
time-shared (IRIX-mode) segments where recording every quantum-sized
burst individually would be wasteful.  Scheduling-level events
(reallocations, multiprogramming-level changes) are recorded alongside
so that the Paraver-style analyses can regenerate Table 2, Fig. 5 and
Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Burst:
    """A maximal interval during which one CPU ran one application."""

    cpu: int
    job_id: int
    app_name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the burst in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class ReallocationRecord:
    """One allocation change applied to a running job."""

    time: float
    job_id: int
    app_name: str
    old_procs: int
    new_procs: int


@dataclass(frozen=True)
class MplSample:
    """Multiprogramming level observed at a point in time."""

    time: float
    running_jobs: int
    queued_jobs: int


@dataclass(frozen=True)
class FaultRecord:
    """One fault or recovery event observed during the run.

    ``kind`` is a small vocabulary shared by the injector, the machine
    and the resource managers:

    * ``cpu_fail`` / ``cpu_repair`` — a CPU went OFFLINE / came back
      (``target`` is the CPU id);
    * ``node_degrade`` / ``node_restore`` — a NUMA node slowed down /
      recovered (``target`` is the node id, ``value`` the speed factor);
    * ``job_crash`` / ``job_hang`` — the injected application failure
      (``target`` is the job id);
    * ``job_kill`` — the RM tore a job down (``value`` is the lost
      work in CPU-seconds);
    * ``job_requeue`` / ``job_failed`` — the queuing system's retry
      outcome (``value`` is the backoff delay for requeues);
    * ``report_drop`` / ``report_corrupt`` — SelfAnalyzer report loss;
    * ``fallback`` — graceful degradation forced an allocation change
      outside the policy: the equal-share fallback for a job with
      stale measurements, or a replacement CPU grafted onto a
      partition after a failure (``value`` is the resulting
      allocation).
    """

    time: float
    kind: str
    #: CPU id, node id or job id, depending on ``kind``
    target: int
    detail: str = ""
    value: float = 0.0


@dataclass
class SyntheticCpuLoad:
    """Aggregate burst statistics for time-shared execution.

    Under the IRIX model CPUs multiplex several kernel threads with a
    short scheduling quantum; recording each quantum as a burst would
    produce hundreds of thousands of records.  Instead we accumulate
    the counts analytically, as Paraver would report them.
    """

    bursts: float = 0.0
    busy_time: float = 0.0

    def add_segment(self, duration: float, sharers: int, quantum: float) -> None:
        """Account a segment where ``sharers`` apps shared this CPU."""
        if duration < 0:
            raise ValueError(f"segment duration must be >= 0, got {duration}")
        if sharers < 1:
            return
        if sharers == 1:
            # Exclusive use still shows as a single long burst per
            # segment; accounted as one burst.
            self.bursts += 1.0
            self.busy_time += duration
            return
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.bursts += duration / quantum
        self.busy_time += duration


class TraceRecorder:
    """Collects all measurement records for one workload execution."""

    def __init__(self, n_cpus: int) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        self.bursts: List[Burst] = []
        self.reallocations: List[ReallocationRecord] = []
        self.mpl_samples: List[MplSample] = []
        self.faults: List[FaultRecord] = []
        self.migrations = 0
        self.synthetic: Dict[int, SyntheticCpuLoad] = {}
        self._horizon = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_burst(self, burst: Burst) -> None:
        """Append a finished burst (zero-length bursts are dropped)."""
        if burst.duration < 0:
            raise ValueError(f"negative burst duration: {burst}")
        if burst.duration == 0:
            return
        self.bursts.append(burst)
        self._horizon = max(self._horizon, burst.end)

    def record_reallocation(self, record: ReallocationRecord) -> None:
        """Append an allocation-change record."""
        self.reallocations.append(record)
        self._horizon = max(self._horizon, record.time)

    def record_mpl(self, time: float, running: int, queued: int) -> None:
        """Sample the multiprogramming level (Fig. 8 input)."""
        self.mpl_samples.append(MplSample(time, running, queued))
        self._horizon = max(self._horizon, time)

    def record_fault(self, record: FaultRecord) -> None:
        """Append a fault/recovery event (drives availability metrics)."""
        self.faults.append(record)
        self._horizon = max(self._horizon, record.time)

    def faults_of_kind(self, kind: str) -> List[FaultRecord]:
        """All fault records of one kind, in recording order."""
        return [f for f in self.faults if f.kind == kind]

    def record_migrations(self, count: int) -> None:
        """Add kernel-thread migrations to the global counter."""
        if count < 0:
            raise ValueError(f"migration count must be >= 0, got {count}")
        self.migrations += count

    def record_timeshare_segment(
        self, cpu: int, t0: float, t1: float, sharers: int, quantum: float
    ) -> None:
        """Account a time-shared segment on one CPU (IRIX mode)."""
        if t1 < t0:
            raise ValueError(f"segment ends before it starts: [{t0}, {t1}]")
        load = self.synthetic.setdefault(cpu, SyntheticCpuLoad())
        load.add_segment(t1 - t0, sharers, quantum)
        self._horizon = max(self._horizon, t1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Latest time touched by any record."""
        return self._horizon

    def bursts_for_cpu(self, cpu: int) -> List[Burst]:
        """All recorded (exclusive-mode) bursts of one CPU, in order."""
        return [b for b in self.bursts if b.cpu == cpu]

    def bursts_for_job(self, job_id: int) -> List[Burst]:
        """All recorded bursts belonging to one job."""
        return [b for b in self.bursts if b.job_id == job_id]

    def busy_time(self) -> float:
        """Total CPU-seconds of recorded activity (real + synthetic)."""
        real = sum(b.duration for b in self.bursts)
        synthetic = sum(load.busy_time for load in self.synthetic.values())
        return real + synthetic

    def cpu_utilization(self, t_end: Optional[float] = None) -> float:
        """Fraction of capacity used up to ``t_end`` (default: horizon)."""
        end = self._horizon if t_end is None else t_end
        if end <= 0:
            return 0.0
        return min(self.busy_time() / (self.n_cpus * end), 1.0)


class FoldingTraceRecorder(TraceRecorder):
    """Bounded-memory twin of :class:`TraceRecorder` for streaming runs.

    The closed-system recorder appends one object per burst, MPL sample
    and reallocation — O(events) memory, fatal for a long-lived
    service.  This variant exposes the exact same recording API (the
    machine, RMs and QS cannot tell them apart) but *folds* each record
    into fixed-size aggregates instead of retaining it:

    * bursts → count, total busy time, and a fixed ``n_cpus``-sized
      per-CPU busy column (so :meth:`busy_time` / ``cpu_utilization``
      still answer exactly);
    * MPL samples → count and running max;
    * reallocations → count;
    * faults → per-kind counts (the kind vocabulary is finite).

    The per-record query surface (``bursts_for_cpu`` and friends)
    returns empty — streaming analyses read
    :class:`~repro.metrics.streaming.StreamingStats` instead.
    """

    def __init__(self, n_cpus: int) -> None:
        super().__init__(n_cpus)
        self.burst_count = 0
        self.burst_busy = 0.0
        self.cpu_busy: List[float] = [0.0] * n_cpus
        self.mpl_sample_count = 0
        self.max_running = 0
        self.reallocation_count = 0
        self.fault_counts: Dict[str, int] = {}

    # -- folds replacing the append paths --------------------------------
    def record_burst(self, burst: Burst) -> None:
        if burst.duration < 0:
            raise ValueError(f"negative burst duration: {burst}")
        if burst.duration == 0:
            return
        self.burst_count += 1
        self.burst_busy += burst.duration
        self.cpu_busy[burst.cpu] += burst.duration
        self._horizon = max(self._horizon, burst.end)

    def record_reallocation(self, record: ReallocationRecord) -> None:
        self.reallocation_count += 1
        self._horizon = max(self._horizon, record.time)

    def record_mpl(self, time: float, running: int, queued: int) -> None:
        self.mpl_sample_count += 1
        if running > self.max_running:
            self.max_running = running
        self._horizon = max(self._horizon, time)

    def record_fault(self, record: FaultRecord) -> None:
        self.fault_counts[record.kind] = self.fault_counts.get(record.kind, 0) + 1
        self._horizon = max(self._horizon, record.time)

    # -- queries over the folds ------------------------------------------
    def busy_time(self) -> float:
        synthetic = sum(load.busy_time for load in self.synthetic.values())
        return self.burst_busy + synthetic

    def faults_of_kind(self, kind: str) -> List[FaultRecord]:
        return []
