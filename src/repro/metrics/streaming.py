"""Bounded-memory aggregation for the open-system streaming mode.

The closed-system pipeline keeps one :class:`~repro.metrics.stats.JobRecord`
per job and summarises at the end — fine for Table 3, fatal for a
long-lived service where memory must not grow with jobs processed.
:class:`StreamingStats` replaces the record list with incremental
aggregates:

* per-application folds built on the PR 7
  :class:`~repro.sim.columns.RunningMean` column (running sum / count /
  max, one fixed-size struct per application class, never per job);
* whole-stream folds for response time and bounded slowdown;
* utilization / backlog / MPL samples in fixed-size deterministic
  :class:`Reservoir` samples (Algorithm R with an explicitly seeded
  generator whose state pickles with the fold);
* admission counters (submitted / admitted / shed / deferred /
  completed / failed / requeued) for the conservation invariants in
  :mod:`repro.validate`.

Conformance contract
--------------------
Folding the records of a closed :class:`~repro.metrics.stats.WorkloadResult`
through :meth:`StreamingStats.observe` in list order reproduces the
result's summary values **exactly** — same bits, not merely close.
This works because every closed-path aggregate sums through
:func:`repro.metrics.stats.fold_sum` (a strict left fold), which is
precisely the ``total += x`` accumulation ``RunningMean`` performs.
The property test in ``tests/test_streaming_stats.py`` enforces the
contract over adversarial float inputs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterable, List, Optional

from repro.metrics.stats import ClassSummary, JobRecord, WorkloadResult
from repro.metrics.statistics import DEFAULT_SLOWDOWN_TAU, bounded_slowdown
from repro.sim.columns import RunningMean

__all__ = ["ClassFold", "Reservoir", "StreamingStats"]


class Reservoir:
    """Fixed-size uniform sample of an unbounded stream (Algorithm R).

    Deterministic by construction: replacement indices come from a
    ``random.Random`` seeded explicitly at construction, and that
    generator's state is part of the pickled fold — a restored service
    continues the exact sample sequence an uninterrupted run would
    have produced.
    """

    __slots__ = ("capacity", "seen", "items", "_rng")

    def __init__(self, capacity: int = 256, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self.items: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Offer one sample; kept with probability capacity/seen."""
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.items[slot] = value

    @property
    def mean(self) -> float:
        """Mean of the retained sample (0.0 when empty)."""
        if not self.items:
            return 0.0
        acc = 0.0
        for value in self.items:
            acc = acc + value
        return acc / len(self.items)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical payload: capacity, offered count, retained items."""
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "items": list(self.items),
        }

    # __slots__ classes have no __dict__; pack the RNG state explicitly
    # so pickled bytes are canonical and restores continue the stream.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "items": list(self.items),
            "rng_state": self._rng.getstate(),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.capacity = state["capacity"]
        self.seen = state["seen"]
        self.items = list(state["items"])
        self._rng = random.Random(0)  # repro: allow(DET103): state is overwritten by setstate() on the next line
        self._rng.setstate(state["rng_state"])


class ClassFold:
    """Per-application incremental twin of :class:`ClassSummary`.

    Three :class:`RunningMean` columns (response / execution / wait)
    plus an incremental max — constant memory per application class.
    """

    __slots__ = ("response", "execution", "wait", "max_response")

    def __init__(self) -> None:
        self.response = RunningMean()
        self.execution = RunningMean()
        self.wait = RunningMean()
        self.max_response: Optional[float] = None

    def observe(self, record: JobRecord) -> None:
        """Fold one finished job into the class aggregates."""
        rt = record.response_time
        self.response.add(rt, record.request)
        self.execution.add(record.execution_time, record.request)
        self.wait.add(record.wait_time, record.request)
        # Incremental strict-> max matches builtin max() over the
        # retained list: both keep the incumbent unless the newcomer
        # compares strictly greater (NaN therefore never displaces).
        if self.max_response is None or rt > self.max_response:
            self.max_response = rt

    @property
    def count(self) -> int:
        return self.response.count

    def summary(self, app_name: str) -> ClassSummary:
        """Materialise the :class:`ClassSummary` this fold reproduces."""
        if self.count == 0:
            raise ValueError(f"no jobs folded for application {app_name!r}")
        assert self.max_response is not None
        return ClassSummary(
            app_name=app_name,
            count=self.count,
            mean_response_time=self.response.mean,
            mean_execution_time=self.execution.mean,
            mean_wait_time=self.wait.mean,
            max_response_time=self.max_response,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum_response": self.response.total,
            "sum_execution": self.execution.total,
            "sum_wait": self.wait.total,
            "max_response": self.max_response,
            "max_request": self.response.max_procs,
        }

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "response": self.response,
            "execution": self.execution,
            "wait": self.wait,
            "max_response": self.max_response,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.response = state["response"]
        self.execution = state["execution"]
        self.wait = state["wait"]
        self.max_response = state["max_response"]


class StreamingStats:
    """Incremental workload aggregates with O(classes + reservoir) memory.

    The fold ingests terminal jobs one at a time (:meth:`observe`) and
    admission events as they happen; :meth:`digest` hashes the
    canonical payload, which is how crash-recovery byte-identity is
    asserted (two runs agree iff their digests agree).
    """

    RESERVOIR_CAPACITY = 256

    def __init__(
        self,
        tau: float = DEFAULT_SLOWDOWN_TAU,
        reservoir_capacity: int = RESERVOIR_CAPACITY,
        reservoir_seed: int = 0,
    ) -> None:
        self.tau = tau
        self.by_app: Dict[str, ClassFold] = {}
        self.overall = ClassFold()
        self.slowdown = RunningMean()
        self.makespan = 0.0
        self.first_submit: Optional[float] = None
        self.attempts = 0
        # admission / lifecycle counters (serve mode)
        self.submitted = 0
        self.admitted = 0
        self.shed_rejected = 0
        self.shed_dropped = 0
        self.deferred = 0
        self.completed = 0
        self.failed = 0
        self.requeues = 0
        self.overload_events = 0
        self.peak_backlog = 0
        self.peak_mpl = 0
        # fixed-size samples of the live signals
        self.backlog_samples = Reservoir(reservoir_capacity, reservoir_seed)
        self.mpl_samples = Reservoir(reservoir_capacity, reservoir_seed + 1)
        self.utilization_samples = Reservoir(reservoir_capacity, reservoir_seed + 2)

    # ------------------------------------------------------------------
    # job lifecycle folds
    # ------------------------------------------------------------------
    def observe(self, record: JobRecord) -> None:
        """Fold one completed job (the closed-path conformance surface)."""
        self.by_app.setdefault(record.app_name, ClassFold()).observe(record)
        self.overall.observe(record)
        self.slowdown.add(
            bounded_slowdown(record.wait_time, record.execution_time, self.tau),
            record.request,
        )
        if record.end_time > self.makespan:
            self.makespan = record.end_time
        if self.first_submit is None or record.submit_time < self.first_submit:
            self.first_submit = record.submit_time
        self.attempts += record.attempts
        self.completed += 1

    def observe_failed(self, submit_time: float, attempts: int) -> None:
        """Fold one job that exhausted its retry budget."""
        self.failed += 1
        self.attempts += attempts
        if self.first_submit is None or submit_time < self.first_submit:
            self.first_submit = submit_time

    def fold_records(self, records: Iterable[JobRecord]) -> "StreamingStats":
        """Fold an iterable of records in order; returns self."""
        for record in records:
            self.observe(record)
        return self

    # ------------------------------------------------------------------
    # admission / live-signal folds (serve mode)
    # ------------------------------------------------------------------
    def observe_submit(self) -> None:
        self.submitted += 1

    def observe_admit(self) -> None:
        self.admitted += 1

    def observe_shed(self, kind: str) -> None:
        """Count one shed job: ``kind`` is ``reject`` or ``drop-oldest``."""
        if kind == "reject":
            self.shed_rejected += 1
        elif kind == "drop-oldest":
            self.shed_dropped += 1
        else:
            raise ValueError(f"unknown shed kind {kind!r}")

    def observe_defer(self) -> None:
        self.deferred += 1

    def observe_requeue(self) -> None:
        self.requeues += 1

    def observe_overload(self) -> None:
        self.overload_events += 1

    def sample_backlog(self, backlog: int) -> None:
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        self.backlog_samples.add(float(backlog))

    def sample_mpl(self, mpl: int) -> None:
        if mpl > self.peak_mpl:
            self.peak_mpl = mpl
        self.mpl_samples.add(float(mpl))

    def sample_utilization(self, utilization: float) -> None:
        self.utilization_samples.add(utilization)

    # ------------------------------------------------------------------
    # derived aggregates (the WorkloadResult conformance surface)
    # ------------------------------------------------------------------
    @property
    def shed(self) -> int:
        """Total jobs shed by admission control."""
        return self.shed_rejected + self.shed_dropped

    @property
    def jobs(self) -> int:
        """Completed jobs folded so far."""
        return self.overall.count

    @property
    def mean_response_time(self) -> float:
        if self.overall.count == 0:
            return 0.0
        return self.overall.response.mean

    @property
    def mean_bounded_slowdown(self) -> float:
        if self.slowdown.count == 0:
            return 0.0
        return self.slowdown.mean

    @property
    def total_execution_time(self) -> float:
        if self.first_submit is None or self.overall.count == 0:
            return 0.0
        return self.makespan - self.first_submit

    def summaries(self) -> Dict[str, ClassSummary]:
        """Per-application summaries — equals ``WorkloadResult.by_app()``."""
        return {name: fold.summary(name) for name, fold in self.by_app.items()}

    def conforms_to(self, result: WorkloadResult) -> bool:
        """True iff this fold reproduces *result*'s summary values exactly."""
        if self.summaries() != result.by_app():
            return False
        if self.mean_response_time != result.mean_response_time:  # repro: allow(DET106): the conformance contract IS bit-exactness — both sides fold the same records in the same order with the same strict left-fold, so an epsilon here would hide real divergence
            return False
        return self.makespan == result.makespan or not result.records

    # ------------------------------------------------------------------
    # canonical payload / digest
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical, JSON-exact payload of every aggregate."""
        return {
            "v": 1,
            "tau": self.tau,
            "jobs": self.jobs,
            "by_app": {
                name: fold.to_dict() for name, fold in sorted(self.by_app.items())
            },
            "sum_response": self.overall.response.total,
            "sum_execution": self.overall.execution.total,
            "sum_wait": self.overall.wait.total,
            "max_response": self.overall.max_response,
            "sum_slowdown": self.slowdown.total,
            "makespan": self.makespan,
            "first_submit": self.first_submit,
            "attempts": self.attempts,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_rejected": self.shed_rejected,
            "shed_dropped": self.shed_dropped,
            "deferred": self.deferred,
            "completed": self.completed,
            "failed": self.failed,
            "requeues": self.requeues,
            "overload_events": self.overload_events,
            "peak_backlog": self.peak_backlog,
            "peak_mpl": self.peak_mpl,
            "backlog_samples": self.backlog_samples.to_dict(),
            "mpl_samples": self.mpl_samples.to_dict(),
            "utilization_samples": self.utilization_samples.to_dict(),
        }

    def digest(self) -> str:
        """SHA-256 of the canonical payload — the byte-identity anchor."""
        from repro.parallel.cache import canonical_dumps

        return hashlib.sha256(canonical_dumps(self.to_dict()).encode()).hexdigest()
