"""Timeline analyses over execution traces.

The paper's evaluation repeatedly reads quantities off the traces:
"we measured the processor allocation received by swim, and we have
found that the Equal_efficiency allocated from a minimum of
2 processors up to a maximum of 28" (§5.1); "the percentage of cpus
that are assigned in average to each type of application is 20 cpus
to bt and 9 cpus to hydro2d" (§5.2); Fig. 8's multiprogramming level
over time.  This module provides those analyses as reusable functions
over a :class:`~repro.metrics.trace.TraceRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.trace import TraceRecorder


@dataclass(frozen=True)
class AllocationStats:
    """Allocation distribution of one job or application class."""

    minimum: int
    maximum: int
    time_weighted_mean: float

    def as_row(self, label: str) -> List[object]:
        """Row for :func:`repro.metrics.stats.format_table`."""
        return [label, self.minimum, self.maximum,
                round(self.time_weighted_mean, 1)]


def job_allocation_steps(
    trace: TraceRecorder, job_id: int, end_time: Optional[float] = None
) -> List[Tuple[float, int]]:
    """(time, allocation) step function of one job, 0-terminated.

    Built from the reallocation records; the final step carries 0
    processors at ``end_time`` (default: the trace horizon) so the
    function integrates cleanly.
    """
    steps = [
        (record.time, record.new_procs)
        for record in sorted(trace.reallocations, key=lambda r: r.time)
        if record.job_id == job_id
    ]
    if not steps:
        return []
    horizon = end_time if end_time is not None else trace.horizon
    bursts = trace.bursts_for_job(job_id)
    if bursts:
        horizon = min(horizon, max(b.end for b in bursts))
    steps.append((max(horizon, steps[-1][0]), 0))
    return steps


def allocation_stats(
    trace: TraceRecorder, job_ids: Iterable[int]
) -> AllocationStats:
    """Min / max / time-weighted mean allocation across jobs.

    Reproduces the §5.1 style of analysis ("from a minimum of 2
    processors up to a maximum of 28").  The mean weights each
    allocation level by the time it was held, across all jobs.

    Raises
    ------
    ValueError
        If none of the jobs has any allocation record.
    """
    minimum: Optional[int] = None
    maximum: Optional[int] = None
    weighted_sum = 0.0
    total_time = 0.0
    for job_id in job_ids:
        steps = job_allocation_steps(trace, job_id)
        for (t0, procs), (t1, _) in zip(steps, steps[1:]):
            span = max(t1 - t0, 0.0)
            if procs > 0:
                minimum = procs if minimum is None else min(minimum, procs)
                maximum = procs if maximum is None else max(maximum, procs)
                weighted_sum += procs * span
                total_time += span
    if minimum is None or maximum is None:
        raise ValueError("no allocation records for the given jobs")
    mean = weighted_sum / total_time if total_time > 0 else float(minimum)
    return AllocationStats(minimum=minimum, maximum=maximum,
                           time_weighted_mean=mean)


def allocation_stats_by_app(
    trace: TraceRecorder, jobs
) -> Dict[str, AllocationStats]:
    """Per-application allocation statistics for a finished run.

    ``jobs`` is any iterable of :class:`~repro.qs.job.Job`-like
    objects with ``job_id`` and ``app_name``.
    """
    by_app: Dict[str, List[int]] = {}
    for job in jobs:
        by_app.setdefault(job.app_name, []).append(job.job_id)
    return {
        app: allocation_stats(trace, ids) for app, ids in sorted(by_app.items())
    }


def utilization_timeline(
    trace: TraceRecorder, bins: int = 50, t_end: Optional[float] = None
) -> List[Tuple[float, float]]:
    """(bin start time, utilization fraction) over the execution.

    Computed from the recorded bursts; time-shared (synthetic) load is
    not binned (it has no per-interval structure) and is excluded.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    horizon = t_end if t_end is not None else trace.horizon
    if horizon <= 0:
        return []
    width = horizon / bins
    busy = [0.0] * bins
    for burst in trace.bursts:
        first = int(burst.start / width)
        last = min(int(min(burst.end, horizon) / width), bins - 1)
        for b in range(first, last + 1):
            lo = b * width
            hi = lo + width
            overlap = min(burst.end, hi) - max(burst.start, lo)
            if overlap > 0:
                busy[b] += overlap
    capacity = trace.n_cpus * width
    return [(b * width, min(busy[b] / capacity, 1.0)) for b in range(bins)]


def queue_timeline(trace: TraceRecorder) -> List[Tuple[float, int]]:
    """(time, queued jobs) steps, from the MPL samples."""
    return [(s.time, s.queued_jobs) for s in trace.mpl_samples]


def capacity_timeline(trace: TraceRecorder) -> List[Tuple[float, int]]:
    """(time, healthy CPUs) steps, from the fault records.

    Starts at ``(0.0, n_cpus)``; each effective ``cpu_fail`` /
    ``cpu_repair`` record steps the capacity down / up.  Skipped
    injections (detail ``"skipped: ..."``) never took effect and are
    ignored.  A run without CPU faults yields the single full-capacity
    step.
    """
    steps = [(0.0, trace.n_cpus)]
    capacity = trace.n_cpus
    offline: set = set()
    for record in sorted(trace.faults, key=lambda f: f.time):
        if record.detail.startswith("skipped"):
            continue
        if record.kind == "cpu_fail" and record.target not in offline:
            offline.add(record.target)
            capacity -= 1
        elif record.kind == "cpu_repair" and record.target in offline:
            offline.discard(record.target)
            capacity += 1
        else:
            continue
        steps.append((record.time, capacity))
    return steps


def render_allocation_table(stats: Dict[str, AllocationStats],
                            title: str = "") -> str:
    """Tabulate per-application allocation statistics."""
    from repro.metrics.stats import format_table

    rows = [s.as_row(app) for app, s in stats.items()]
    return format_table(["app", "min CPUs", "max CPUs", "mean CPUs"], rows,
                        title=title or "allocation statistics")
