"""Fault and recovery statistics derived from the trace.

Turns the :class:`~repro.metrics.trace.FaultRecord` stream into the
dependability numbers a robustness evaluation reports: machine
availability (healthy CPU-seconds over total CPU-seconds), mean time
to repair, CPU-seconds of work lost to kills, and event counts for
every fault class.  Everything is computed from the trace alone, so
the analysis also works on replayed or stored runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.trace import TraceRecorder


@dataclass(frozen=True)
class FaultStats:
    """Dependability summary of one run.

    Attributes
    ----------
    availability:
        Healthy CPU-seconds / total CPU-seconds over the horizon;
        1.0 when no CPU ever failed.
    mttr:
        Mean time to repair across CPU failures.  A failure never
        repaired within the run is censored at the horizon (so
        permanent failures push MTTR towards the remaining run
        length instead of vanishing from the statistic).
    lost_work:
        CPU-seconds of execution discarded by job kills.
    cpu_failures / cpu_repairs:
        Counts of CPU outage and repair events (skipped injections
        excluded).
    crashes / hangs / kills / requeues / failed_jobs:
        Application-level fault and recovery counts.
    reports_dropped / reports_corrupted / fallbacks:
        Report-loss events and forced (out-of-policy) allocations.
    """

    availability: float = 1.0
    mttr: float = 0.0
    lost_work: float = 0.0
    cpu_failures: int = 0
    cpu_repairs: int = 0
    crashes: int = 0
    hangs: int = 0
    kills: int = 0
    requeues: int = 0
    failed_jobs: int = 0
    reports_dropped: int = 0
    reports_corrupted: int = 0
    fallbacks: int = 0

    @property
    def clean(self) -> bool:
        """True when the trace recorded no fault activity at all."""
        return (
            self.cpu_failures == 0 and self.crashes == 0 and self.hangs == 0
            and self.kills == 0 and self.reports_dropped == 0
            and self.reports_corrupted == 0 and self.fallbacks == 0
        )

    def summary_line(self) -> str:
        """One-line human-readable digest for CLI footers."""
        return (
            f"availability {self.availability * 100:.2f}%  "
            f"MTTR {self.mttr:.1f}s  lost work {self.lost_work:.0f} cpu-s  "
            f"kills {self.kills}  requeues {self.requeues}  "
            f"failed {self.failed_jobs}"
        )


def offline_windows(
    trace: TraceRecorder, horizon: Optional[float] = None
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-CPU [fail, repair) windows, censored at the horizon.

    Skipped injections (records whose ``detail`` starts with
    ``"skipped"``) never took effect and are excluded.  Duplicate
    fails before a repair are collapsed into one window.
    """
    end = trace.horizon if horizon is None else horizon
    down_since: Dict[int, float] = {}
    windows: Dict[int, List[Tuple[float, float]]] = {}
    for record in trace.faults:
        if record.detail.startswith("skipped"):
            continue
        if record.kind == "cpu_fail":
            down_since.setdefault(record.target, record.time)
        elif record.kind == "cpu_repair":
            start = down_since.pop(record.target, None)
            if start is not None:
                windows.setdefault(record.target, []).append((start, record.time))
    for cpu, start in down_since.items():
        windows.setdefault(cpu, []).append((start, max(end, start)))
    return windows


def fault_statistics(
    trace: TraceRecorder, horizon: Optional[float] = None
) -> FaultStats:
    """Compute the :class:`FaultStats` of one run from its trace."""
    end = trace.horizon if horizon is None else horizon
    windows = offline_windows(trace, end)
    downtime = sum(t1 - t0 for spans in windows.values() for t0, t1 in spans)
    repairs = [t1 - t0 for spans in windows.values() for t0, t1 in spans]
    capacity = trace.n_cpus * end
    availability = 1.0 if capacity <= 0 else max(0.0, 1.0 - downtime / capacity)
    mttr = sum(repairs) / len(repairs) if repairs else 0.0

    def count(kind: str) -> int:
        return sum(
            1 for f in trace.faults
            if f.kind == kind and not f.detail.startswith("skipped")
        )

    return FaultStats(
        availability=availability,
        mttr=mttr,
        lost_work=sum(f.value for f in trace.faults if f.kind == "job_kill"),
        cpu_failures=count("cpu_fail"),
        cpu_repairs=count("cpu_repair"),
        crashes=count("job_crash"),
        hangs=count("job_hang"),
        kills=count("job_kill"),
        requeues=count("job_requeue"),
        failed_jobs=count("job_failed"),
        reports_dropped=count("report_drop"),
        reports_corrupted=count("report_corrupt"),
        fallbacks=count("fallback"),
    )
