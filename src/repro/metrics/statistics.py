"""Small statistics toolbox for experiment results.

Scheduling evaluations report more than means: the paper itself uses
averages per class, but a credible reproduction should expose the
spread across seeds and jobs.  This module provides pure-Python
summary statistics (no third-party dependencies in the core library):

* :func:`percentile` — linear-interpolation percentiles,
* :func:`summary` — mean / std / min / median / p95 / max,
* :func:`confidence_interval` — a normal-approximation 95% CI of the
  mean (adequate for the sample sizes the harnesses produce),
* :func:`bounded_slowdown` — the standard job-scheduling metric
  ``max(1, (wait + exec) / max(exec, tau))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Threshold (seconds) below which execution times are clamped in the
#: bounded-slowdown metric, so tiny jobs do not dominate it.
DEFAULT_SLOWDOWN_TAU = 10.0


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Raises
    ------
    ValueError
        If *values* is empty or *q* is outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Guard against floating-point drift outside the sample range.
    return min(max(value, ordered[0]), ordered[-1])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (ValueError on empty input).

    Sums via :func:`repro.metrics.stats.fold_sum` so the result is
    reproducible by a one-sample-at-a-time streaming fold on every
    interpreter (the ``sum`` builtin is compensated on CPython 3.12+).
    """
    if not values:
        raise ValueError("cannot take the mean of no values")
    from repro.metrics.stats import fold_sum

    return fold_sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


@dataclass(frozen=True)
class Summary:
    """Distribution summary of one metric."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def as_row(self, label: str) -> List[object]:
        """Row for :func:`repro.metrics.stats.format_table`."""
        return [
            label, self.count, round(self.mean, 1), round(self.std, 1),
            round(self.minimum, 1), round(self.median, 1),
            round(self.p95, 1), round(self.maximum, 1),
        ]


def summary(values: Sequence[float]) -> Summary:
    """Summarise a sample (ValueError on empty input)."""
    if not values:
        raise ValueError("cannot summarise no values")
    return Summary(
        count=len(values),
        mean=mean(values),
        std=std(values),
        minimum=min(values),
        median=percentile(values, 50),
        p95=percentile(values, 95),
        maximum=max(values),
    )


def confidence_interval(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation confidence interval of the mean.

    With fewer than two samples the interval collapses to the single
    value.
    """
    m = mean(values)
    if len(values) < 2:
        return (m, m)
    half = z * std(values) / math.sqrt(len(values))
    return (m - half, m + half)


def bounded_slowdown(
    wait_time: float, execution_time: float, tau: float = DEFAULT_SLOWDOWN_TAU
) -> float:
    """Bounded slowdown of one job (Feitelson's standard metric)."""
    if wait_time < 0 or execution_time < 0:
        raise ValueError("times must be >= 0")
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    response = wait_time + execution_time
    return max(1.0, response / max(execution_time, tau))


def mean_bounded_slowdown(
    records, tau: float = DEFAULT_SLOWDOWN_TAU
) -> float:
    """Mean bounded slowdown over :class:`JobRecord`-like objects."""
    values = [
        bounded_slowdown(r.wait_time, r.execution_time, tau) for r in records
    ]
    if not values:
        raise ValueError("no records")
    return mean(values)
