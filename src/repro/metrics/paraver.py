"""Paraver-style trace analyses.

The paper uses the Paraver tool to measure "the total number of
process migrations, the duration of the bursts executed by each cpu,
and the number of bursts executed per cpu" (Table 2) and to render the
per-CPU execution views of Fig. 5.  These functions compute the same
quantities from a :class:`~repro.metrics.trace.TraceRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.trace import TraceRecorder


@dataclass(frozen=True)
class BurstStatistics:
    """The three Table 2 metrics for one workload execution."""

    migrations: int
    avg_burst_time: float
    avg_bursts_per_cpu: float

    def as_row(self, label: str) -> Tuple[str, int, float, float]:
        """Row for :func:`repro.metrics.stats.format_table`."""
        return (label, self.migrations, self.avg_burst_time, self.avg_bursts_per_cpu)


def burst_statistics(trace: TraceRecorder) -> BurstStatistics:
    """Compute migrations and burst statistics from a trace.

    Combines exclusively recorded bursts (space-sharing execution)
    with the synthetic aggregates accumulated for time-shared (IRIX)
    execution.
    """
    total_bursts = float(len(trace.bursts))
    total_burst_time = sum(b.duration for b in trace.bursts)
    active_cpus = {b.cpu for b in trace.bursts}
    for cpu, load in trace.synthetic.items():
        total_bursts += load.bursts
        total_burst_time += load.busy_time
        if load.bursts > 0:
            active_cpus.add(cpu)
    n_cpus = max(len(active_cpus), 1)
    avg_burst = total_burst_time / total_bursts if total_bursts else 0.0
    return BurstStatistics(
        migrations=trace.migrations,
        avg_burst_time=avg_burst,
        avg_bursts_per_cpu=total_bursts / n_cpus,
    )


def mpl_timeline(trace: TraceRecorder) -> List[Tuple[float, int]]:
    """(time, running jobs) steps — the data behind Fig. 8."""
    return [(s.time, s.running_jobs) for s in trace.mpl_samples]


def max_mpl(trace: TraceRecorder) -> int:
    """Highest multiprogramming level observed in the trace."""
    if not trace.mpl_samples:
        return 0
    return max(s.running_jobs for s in trace.mpl_samples)


def _app_symbols(trace: TraceRecorder) -> Dict[str, str]:
    """Assign one printable symbol per application name."""
    symbols = "SBHAXYZWVUTQ"
    names = sorted({b.app_name for b in trace.bursts})
    mapping: Dict[str, str] = {}
    for i, name in enumerate(names):
        # Prefer the app's initial when unique, else fall back.
        initial = name[:1].upper() or "?"
        if initial not in mapping.values():
            mapping[name] = initial
        else:
            mapping[name] = symbols[i % len(symbols)]
    return mapping


def execution_view(
    trace: TraceRecorder,
    width: int = 100,
    cpus: Optional[Sequence[int]] = None,
    t_end: Optional[float] = None,
) -> str:
    """Render an ASCII version of the paper's Fig. 5 execution view.

    Each line is one CPU; each column is a time bin; the character is
    the application that occupied the CPU for most of the bin ('.' for
    idle, '#' for time-shared chaos where several applications ran).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    horizon = t_end if t_end is not None else trace.horizon
    if horizon <= 0:
        return "(empty trace)"
    cpu_ids = list(cpus) if cpus is not None else list(range(trace.n_cpus))
    symbols = _app_symbols(trace)
    bin_width = horizon / width

    # occupancy[cpu][bin] -> {app_name: seconds}
    occupancy: Dict[int, List[Dict[str, float]]] = {
        cpu: [dict() for _ in range(width)] for cpu in cpu_ids
    }
    wanted = set(cpu_ids)
    for burst in trace.bursts:
        if burst.cpu not in wanted or burst.start >= horizon:
            continue
        first_bin = int(burst.start / bin_width)
        last_bin = min(int(min(burst.end, horizon) / bin_width), width - 1)
        for b in range(first_bin, last_bin + 1):
            bin_start = b * bin_width
            bin_end = bin_start + bin_width
            overlap = min(burst.end, bin_end) - max(burst.start, bin_start)
            if overlap <= 0:
                continue
            cell = occupancy[burst.cpu][b]
            cell[burst.app_name] = cell.get(burst.app_name, 0.0) + overlap

    shared_cpus = set(trace.synthetic)
    lines = [f"time: 0 .. {horizon:.1f}s   ({bin_width:.2f}s per column)"]
    for cpu in cpu_ids:
        chars = []
        for b in range(width):
            cell = occupancy[cpu][b]
            if not cell:
                # Time-shared CPUs show as '#' (several apps at once),
                # matching the "chaotic" look of the IRIX view.
                chars.append("#" if cpu in shared_cpus else ".")
                continue
            winner = max(cell.items(), key=lambda kv: kv[1])[0]
            chars.append(symbols.get(winner, "?"))
        lines.append(f"cpu{cpu:3d} |{''.join(chars)}|")
    legend = "  ".join(f"{sym}={name}" for name, sym in sorted(symbols.items()))
    if legend:
        lines.append(f"legend: {legend}  .=idle  #=time-shared")
    return "\n".join(lines)


def allocation_timeline(
    trace: TraceRecorder, job_id: int
) -> List[Tuple[float, int]]:
    """(time, procs) steps for one job, from the reallocation records."""
    steps = [
        (r.time, r.new_procs)
        for r in sorted(trace.reallocations, key=lambda r: r.time)
        if r.job_id == job_id
    ]
    return steps


def mean_allocation(trace: TraceRecorder, job_id: int) -> float:
    """Time-weighted mean partition size of one job.

    Computed from the job's recorded bursts: total CPU-seconds divided
    by the job's active wall-clock span.
    """
    bursts = trace.bursts_for_job(job_id)
    if not bursts:
        return 0.0
    start = min(b.start for b in bursts)
    end = max(b.end for b in bursts)
    if end <= start:
        return 0.0
    cpu_seconds = sum(b.duration for b in bursts)
    return cpu_seconds / (end - start)
