"""Fault injection and graceful degradation (robustness subsystem).

The paper's schedulers assume a healthy machine; this package asks
what happens when it is not.  A declarative :class:`FaultPlan` (CPU
failures, NUMA slowdowns, application crashes/hangs, SelfAnalyzer
report loss) is executed by a deterministic :class:`FaultInjector`,
and the machine / resource-manager / queuing-system layers degrade
gracefully instead of wedging: partitions are repaired or shrunk,
stale-measurement jobs fall back to an equal share, hung jobs are
killed by a watchdog, and killed jobs retry with capped backoff.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CpuFault,
    FaultEvent,
    FaultPlan,
    JobCrash,
    JobHang,
    NodeSlowdown,
    ReportLoss,
)
from repro.faults.scenarios import SCENARIOS, build_scenario

__all__ = [
    "CpuFault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "JobCrash",
    "JobHang",
    "NodeSlowdown",
    "ReportLoss",
    "SCENARIOS",
    "build_scenario",
]
