"""Declarative fault plans.

A :class:`FaultPlan` is data, not behaviour: a tuple of timed fault
events plus the degradation parameters (staleness threshold, watchdog
timeout, retry budget) that govern how the system reacts.  The
:class:`~repro.faults.injector.FaultInjector` turns the plan into
simulator events; keeping the plan declarative makes scenarios
reproducible, diffable and trivially serialisable.

Determinism contract: a plan plus a master seed fully determines the
run.  Event times are fixed numbers; the only randomness (victim
selection for job crashes/hangs, report loss) comes from the named
``"faults"`` stream of the run's :class:`~repro.sim.rng.RandomStreams`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.qs.queuing import RetryConfig


@dataclass(frozen=True)
class CpuFault:
    """One CPU goes OFFLINE at ``time``.

    ``repair_after`` is the repair delay in seconds; ``None`` means the
    failure is permanent for the rest of the run.
    """

    time: float
    cpu: int
    repair_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.cpu < 0:
            raise ValueError(f"cpu id must be >= 0, got {self.cpu}")
        if self.repair_after is not None and self.repair_after <= 0:
            raise ValueError(
                f"repair_after must be positive, got {self.repair_after}"
            )


@dataclass(frozen=True)
class NodeSlowdown:
    """A NUMA node drops to ``factor`` of full speed at ``time``.

    Models thermal throttling or a memory-controller brownout; jobs
    whose partition touches the node run slower but keep running.
    """

    time: float
    node: int
    factor: float
    restore_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ValueError(f"node id must be >= 0, got {self.node}")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.restore_after is not None and self.restore_after <= 0:
            raise ValueError(
                f"restore_after must be positive, got {self.restore_after}"
            )


@dataclass(frozen=True)
class JobCrash:
    """An application dies abruptly at ``time``.

    ``job_id=None`` picks a victim deterministically among the jobs
    running at fault time (from the seeded ``"faults"`` stream); the
    event is skipped when nothing is running.
    """

    time: float
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class JobHang:
    """An application livelocks at ``time``: it keeps its processors
    but never progresses until the watchdog kills it."""

    time: float
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class ReportLoss:
    """Stochastic SelfAnalyzer report loss/corruption.

    Each report delivered inside ``[start, end]`` (and matching
    ``job_id``, when set) is independently dropped with ``drop_prob``
    or has its measured speedup scaled by a uniform factor from
    ``[corrupt_low, corrupt_high]`` with ``corrupt_prob``.
    """

    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    corrupt_low: float = 0.5
    corrupt_high: float = 1.5
    start: float = 0.0
    end: float = math.inf
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0 or not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        if self.drop_prob + self.corrupt_prob > 1.0:
            raise ValueError(
                f"drop_prob + corrupt_prob must be <= 1, got "
                f"{self.drop_prob} + {self.corrupt_prob}"
            )
        if not 0.0 < self.corrupt_low <= self.corrupt_high:
            raise ValueError(
                f"need 0 < corrupt_low <= corrupt_high, got "
                f"{self.corrupt_low}/{self.corrupt_high}"
            )
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"need 0 <= start <= end, got {self.start}/{self.end}")

    @property
    def active(self) -> bool:
        """Whether this loss model can affect any report at all."""
        return self.drop_prob > 0.0 or self.corrupt_prob > 0.0


#: Timed fault events a plan may carry.
FaultEvent = Union[CpuFault, NodeSlowdown, JobCrash, JobHang]


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault scenario plus its degradation parameters.

    Attributes
    ----------
    events:
        Timed fault events, in any order (the simulator sorts).
    report_loss:
        Optional stochastic report loss model.
    stale_after:
        A report-driven policy falls back to an equal share for any
        malleable job whose last report is older than this.
    sweep_interval:
        Period of the injector's watchdog/staleness sweep.
    hang_timeout:
        A job whose runtime makes no observable progress for this long
        is killed by the watchdog.
    max_retries / backoff_base / backoff_cap:
        Retry budget and capped exponential backoff applied by the
        queuing system to killed jobs.
    """

    events: Tuple[FaultEvent, ...] = ()
    report_loss: Optional[ReportLoss] = None
    stale_after: float = 45.0
    sweep_interval: float = 10.0
    hang_timeout: float = 60.0
    max_retries: int = 3
    backoff_base: float = 5.0
    backoff_cap: float = 60.0

    def __post_init__(self) -> None:
        # Accept any iterable of events for convenience.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        if self.stale_after <= 0:
            raise ValueError(f"stale_after must be positive, got {self.stale_after}")
        if self.sweep_interval <= 0:
            raise ValueError(
                f"sweep_interval must be positive, got {self.sweep_interval}"
            )
        if self.hang_timeout <= 0:
            raise ValueError(f"hang_timeout must be positive, got {self.hang_timeout}")
        # Delegate retry validation to RetryConfig.
        self.retry_config()

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the no-fault fast path)."""
        return not self.events and (
            self.report_loss is None or not self.report_loss.active
        )

    def retry_config(self) -> RetryConfig:
        """The queuing-system retry policy this plan prescribes."""
        return RetryConfig(
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
        )
