"""Canned fault scenarios for the CLI and the experiment harness.

Each scenario is a function from the machine size to a
:class:`~repro.faults.plan.FaultPlan`, so ``--faults cpukill8`` works
on any ``--cpus`` value.  Times assume the default 300-second
submission window; all scenarios strike mid-workload, when the
machine is busiest.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.plan import (
    CpuFault,
    FaultPlan,
    JobCrash,
    JobHang,
    NodeSlowdown,
    ReportLoss,
)


def cpukill8(n_cpus: int) -> FaultPlan:
    """Kill 8 CPUs spread across the machine mid-workload.

    Four failures are permanent, four are repaired after ~90 seconds;
    a crash and a hang ride along so the retry path is exercised too.
    On machines with fewer than 8 CPUs the spread collapses onto the
    CPUs that exist (duplicates are deduplicated by id).
    """
    targets = sorted({i * n_cpus // 8 for i in range(8)})
    events = []
    for rank, cpu in enumerate(targets):
        if rank % 2 == 0:
            events.append(CpuFault(time=80.0 + 5.0 * rank, cpu=cpu))
        else:
            events.append(
                CpuFault(time=80.0 + 5.0 * rank, cpu=cpu, repair_after=90.0)
            )
    events.append(JobCrash(time=120.0))
    events.append(JobHang(time=140.0))
    return FaultPlan(events=tuple(events))


def flaky_reports(n_cpus: int) -> FaultPlan:
    """SelfAnalyzer reports drop or arrive corrupted for the whole run.

    Stresses the graceful-degradation path of the report-driven
    policies (PDPA, Equal_eff): with 35% of reports lost and 15%
    corrupted, the equal-share fallback must keep allocations sane.
    """
    return FaultPlan(
        report_loss=ReportLoss(drop_prob=0.35, corrupt_prob=0.15),
        stale_after=30.0,
    )


def brownout(n_cpus: int) -> FaultPlan:
    """NUMA nodes throttle and a few CPUs blink out transiently.

    Models a thermal/power brownout: half the nodes run at 60% speed
    for two minutes while three CPUs take short outages.
    """
    n_nodes = max(1, n_cpus // 2)  # default topology: 2 CPUs per node
    slow_nodes = range(0, n_nodes, 2)
    events = [
        NodeSlowdown(time=70.0 + 2.0 * i, node=node, factor=0.6,
                     restore_after=120.0)
        for i, node in enumerate(slow_nodes)
    ]
    for i, cpu in enumerate(sorted({n_cpus // 4, n_cpus // 2, 3 * n_cpus // 4})):
        events.append(CpuFault(time=100.0 + 15.0 * i, cpu=cpu, repair_after=45.0))
    return FaultPlan(events=tuple(events))


#: Scenario registry used by ``--faults`` and the smoke tests.
SCENARIOS: Dict[str, Callable[[int], FaultPlan]] = {
    "cpukill8": cpukill8,
    "flaky-reports": flaky_reports,
    "brownout": brownout,
}


def build_scenario(name: str, n_cpus: int) -> FaultPlan:
    """Instantiate a canned scenario for a machine size."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return builder(n_cpus)
