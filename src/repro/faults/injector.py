"""The fault injector: turns a :class:`FaultPlan` into simulator events.

The injector sits *outside* the system under test.  It only uses the
public fault surface the subsystem exposes:

* ``rm.on_cpu_failed`` / ``rm.on_cpu_repaired`` — capacity changes,
* ``rm.on_node_degraded`` / ``rm.on_node_restored`` — slowdowns,
* ``rm.kill_job`` — crash teardown (the queuing system then retries),
* ``runtime.hang()`` — livelock (caught by the watchdog sweep),
* ``rm.report_filter`` — SelfAnalyzer report loss/corruption.

Besides injecting faults it runs the *recovery sweep*, the part of
graceful degradation that needs a clock: a watchdog that kills jobs
making no observable progress, and the equal-share fallback the paper's
coordination story implies for report-driven policies — when PDPA's
measurements stop arriving, falling back to an equipartition keeps the
machine busy instead of freezing allocations at stale values.

Everything is deterministic given (master seed, plan): event times are
plan data and all randomness comes from the named ``"faults"`` stream.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.faults.plan import (
    CpuFault,
    FaultPlan,
    JobCrash,
    JobHang,
    NodeSlowdown,
)
from repro.metrics.trace import FaultRecord, TraceRecorder
from repro.qs.job import Job
from repro.qs.queuing import NanosQS
from repro.rm.manager import BaseResourceManager
from repro.runtime.selfanalyzer import PerformanceReport
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class FaultInjector:
    """Schedules one plan's faults and runs the recovery sweep."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        rm: BaseResourceManager,
        qs: NanosQS,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.rm = rm
        self.qs = qs
        self.trace = trace if trace is not None else rm.trace
        self._rng = streams.stream("faults")
        self._installed = False
        #: watchdog memory: job_id -> (progress signature, since)
        self._progress: Dict[int, Tuple[tuple, float]] = {}

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule the plan's events and start the recovery sweep.

        A run without an injector and a run with an empty plan are
        byte-identical: installation is a no-op when the plan is empty
        (no events scheduled, no report filter, no RNG stream touched).
        """
        if self._installed:
            raise RuntimeError("fault injector installed twice")
        self._installed = True
        if self.plan.empty:
            return
        for index, event in enumerate(self.plan.events):
            if isinstance(event, CpuFault):
                self.sim.schedule_at(
                    event.time, self._cpu_fault, event,
                    label=f"fault:cpu:{event.cpu}",
                )
            elif isinstance(event, NodeSlowdown):
                self.sim.schedule_at(
                    event.time, self._node_slowdown, event,
                    label=f"fault:node:{event.node}",
                )
            elif isinstance(event, JobCrash):
                self.sim.schedule_at(
                    event.time, self._job_crash, event,
                    label=f"fault:crash:{index}",
                )
            elif isinstance(event, JobHang):
                self.sim.schedule_at(
                    event.time, self._job_hang, event,
                    label=f"fault:hang:{index}",
                )
            else:  # pragma: no cover - plan type is closed
                raise TypeError(f"unknown fault event {event!r}")
        if self.plan.report_loss is not None and self.plan.report_loss.active:
            self.rm.report_filter = self._filter_report
        self.sim.schedule_after(
            self.plan.sweep_interval, self._sweep, label="fault:sweep"
        )

    # ------------------------------------------------------------------
    # hardware faults
    # ------------------------------------------------------------------
    def _cpu_fault(self, event: CpuFault) -> None:
        if self.rm.effective_cpus <= 1:
            # A machine with zero healthy CPUs cannot make progress;
            # refuse the fault rather than deadlock the workload.
            self._record("cpu_fail", event.cpu, detail="skipped: last healthy CPU")
            return
        self.rm.on_cpu_failed(event.cpu, permanent=event.repair_after is None)
        if event.repair_after is not None:
            self.sim.schedule_after(
                event.repair_after, self.rm.on_cpu_repaired, event.cpu,
                label=f"fault:repair:{event.cpu}",
            )

    def _node_slowdown(self, event: NodeSlowdown) -> None:
        self.rm.on_node_degraded(event.node, event.factor)
        if event.restore_after is not None:
            self.sim.schedule_after(
                event.restore_after, self.rm.on_node_restored, event.node,
                label=f"fault:restore:{event.node}",
            )

    # ------------------------------------------------------------------
    # application faults
    # ------------------------------------------------------------------
    def _pick_victim(self, wanted: Optional[int]) -> Optional[Job]:
        """The requested job if it is running, else a seeded pick."""
        if wanted is not None:
            return self.rm.jobs.get(wanted)
        running = sorted(self.rm.jobs)
        if not running:
            return None
        return self.rm.jobs[self._rng.choice(running)]

    def _job_crash(self, event: JobCrash) -> None:
        victim = self._pick_victim(event.job_id)
        if victim is None:
            self._record(
                "job_crash", -1 if event.job_id is None else event.job_id,
                detail="skipped: no running victim",
            )
            return
        self._record("job_crash", victim.job_id)
        self.rm.kill_job(victim, reason="crash")

    def _job_hang(self, event: JobHang) -> None:
        victim = self._pick_victim(event.job_id)
        if victim is None:
            self._record(
                "job_hang", -1 if event.job_id is None else event.job_id,
                detail="skipped: no running victim",
            )
            return
        self._record("job_hang", victim.job_id)
        self.rm.runtimes[victim.job_id].hang()

    # ------------------------------------------------------------------
    # report loss
    # ------------------------------------------------------------------
    def _filter_report(
        self, job: Job, report: PerformanceReport
    ) -> Optional[PerformanceReport]:
        loss = self.plan.report_loss
        assert loss is not None
        now = self.sim.now
        if loss.job_id is not None and job.job_id != loss.job_id:
            return report
        if not loss.start <= now <= loss.end:
            return report
        u = self._rng.random()
        if u < loss.drop_prob:
            self._record("report_drop", job.job_id)
            return None
        if u < loss.drop_prob + loss.corrupt_prob:
            factor = self._rng.uniform(loss.corrupt_low, loss.corrupt_high)
            self._record("report_corrupt", job.job_id, value=factor)
            return replace(report, speedup=report.speedup * factor)
        return report

    # ------------------------------------------------------------------
    # recovery sweep: watchdog + staleness fallback
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        now = self.sim.now
        self._watchdog(now)
        self._staleness_fallback(now)
        if not self.qs.all_done:
            self.sim.schedule_after(
                self.plan.sweep_interval, self._sweep, label="fault:sweep"
            )

    def _watchdog(self, now: float) -> None:
        """Kill jobs whose runtime made no progress for hang_timeout."""
        running = set(self.rm.runtimes)
        for job_id in list(self._progress):
            if job_id not in running:
                del self._progress[job_id]
        for job_id, runtime in list(self.rm.runtimes.items()):
            signature = (runtime.phase, runtime.app.completed_iterations)
            known = self._progress.get(job_id)
            if known is None or known[0] != signature:
                self._progress[job_id] = (signature, now)
                continue
            if now - known[1] >= self.plan.hang_timeout:
                del self._progress[job_id]
                self.rm.kill_job(
                    self.rm.jobs[job_id],
                    reason=f"watchdog: no progress for {now - known[1]:.0f}s",
                )

    def _staleness_fallback(self, now: float) -> None:
        """Equal-share fallback for report-driven policies (PDPA §4).

        A malleable job whose measurements are older than
        ``stale_after`` can no longer be trusted to drive the
        allocation automaton; park it at the equipartition share so
        the rest of the machine keeps being scheduled on fresh data.
        """
        policy = getattr(self.rm, "policy", None)
        if policy is None or not policy.uses_reports:
            return
        force = getattr(self.rm, "force_allocation", None)
        if force is None:  # pragma: no cover - space-shared RMs have it
            return
        for job_id, job in list(self.rm.jobs.items()):
            if not job.spec.malleable:
                continue
            runtime = self.rm.runtimes.get(job_id)
            if runtime is None or runtime.hung:
                continue  # the watchdog owns hung jobs
            last = self.rm.last_report_time.get(job_id, now)
            if now - last <= self.plan.stale_after:
                continue
            assert job.request is not None
            share = max(
                1,
                min(job.request,
                    self.rm.effective_cpus // max(1, len(self.rm.jobs))),
            )
            force(job_id, share, reason="stale measurements")
            # One fallback per staleness episode: a job that still
            # reports nothing is re-forced only stale_after later.
            self.rm.last_report_time[job_id] = now

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record(
        self, kind: str, target: int, detail: str = "", value: float = 0.0
    ) -> None:
        if self.trace is not None:
            self.trace.record_fault(
                FaultRecord(self.sim.now, kind, target, detail, value)
            )
