"""Named, reproducible random-number streams.

Every stochastic element of the simulation (arrival process,
measurement noise, execution-time jitter, IRIX placement decisions)
draws from its own named stream derived from a single master seed.
This keeps experiments reproducible *and* comparable: changing the
scheduling policy does not perturb the arrival sequence, which mirrors
the paper's use of fixed workload trace files so that "the same set of
applications was executed in all the scheduling policies evaluated".
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Any, Dict, List, Optional, Tuple


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name.

    The derivation uses SHA-256 so that child streams are statistically
    independent and insensitive to the order in which they are created.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named :class:`random.Random` substreams.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("noise")
    >>> a is streams.stream("arrivals")
    True
    >>> a is b
    False
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed all substreams derive from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self._master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent child factory (e.g. one per job)."""
        return RandomStreams(derive_seed(self._master_seed, f"spawn:{name}"))

    def discard(self, name: str) -> bool:
        """Forget one stream (True if it existed).

        Per-job streams (``iter-noise:<id>``) would otherwise pin one
        Mersenne Twister state per job ever processed — an unbounded
        leak for the streaming service.  Discarding is safe only for
        streams that will never be drawn again: recreating the name
        restarts it from its derived seed, not where it left off.
        """
        return self._streams.pop(name, None) is not None

    def reset(self) -> None:
        """Forget all streams; they are rebuilt deterministically."""
        self._streams.clear()

    # ------------------------------------------------------------------
    # pickling: pack the Mersenne Twister state words as one column
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # Each stream's MT state is a tuple of 625 Python ints, which
        # pickle stores one boxed int at a time (~3.3 KB per stream).
        # Packing the words into a little-endian uint32 column cuts
        # that to 2.5 KB and, with names sorted, makes the bytes
        # canonical regardless of stream-creation order.
        streams: List[Tuple[str, int, bytes, Optional[float]]] = []
        for name in sorted(self._streams):
            version, words, gauss_next = self._streams[name].getstate()
            streams.append(
                (name, version, struct.pack("<%dI" % len(words), *words), gauss_next)
            )
        return {"master_seed": self._master_seed, "streams": streams}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._master_seed = state["master_seed"]
        self._streams = {}
        for name, version, blob, gauss_next in state["streams"]:
            words = struct.unpack("<%dI" % (len(blob) // 4), blob)
            rng = random.Random(0)  # repro: allow(DET103): state is overwritten by setstate() on the next line
            rng.setstate((version, words, gauss_next))
            self._streams[name] = rng

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """Draw a multiplicative noise factor with median 1.0.

        A log-normal factor is the standard model for timing jitter:
        strictly positive and symmetric on a log scale.  ``sigma`` of 0
        always returns exactly 1.0, making noise easy to disable.
        """
        if sigma <= 0.0:
            return 1.0
        return self.stream(name).lognormvariate(0.0, sigma)

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given mean (>0)."""
        if mean <= 0.0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)
