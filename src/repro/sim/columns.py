"""Columnar hot-core state: packed per-CPU/per-job columns + batched kernels.

The simulator's three hottest computations — per-CPU burst accounting,
speedup-curve evaluation, and SelfAnalyzer iteration timing — used to
run as per-object scalar Python (one attribute update or one memoized
curve call per entity per event).  This module restructures that state
into contiguous *columns* (structure-of-arrays) and exposes *batched
kernels* that process a whole partition, node, or candidate vector per
call.

Backend selection happens once, at import time, behind one interface:

* ``numpy`` arrays when numpy is importable (and not disabled), with
  vectorized kernels for the float-heavy paths;
* dependency-free ``array``/``bytearray`` packed columns otherwise,
  with tight scalar loops inside a single function call.

Both backends are required to produce **bit-identical** results — the
kernels only ever perform the same elementwise IEEE-754 double
operations in the same order as the retained scalar reference
implementations (``reference_*`` below), and the kernel-parity suite
(tests/test_columns.py) pins all three against each other, including
NaN/inf/-0.0 payloads.  Set ``REPRO_COLUMNS_BACKEND=python`` to force
the fallback (the no-numpy CI leg does), or ``=numpy`` to fail fast
when numpy is missing.

Serialization is canonical and backend-independent: columns pickle as
little-endian packed bytes (``struct``), never as numpy arrays or
Python object lists, so checkpoint envelopes shrink and stay
byte-identical across backends.
"""

from __future__ import annotations

import os
import struct
from array import array
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

_env_backend = os.environ.get("REPRO_COLUMNS_BACKEND", "")  # repro: allow(DET110): backend choice is output-invariant by contract — the kernel-parity suite pins the numpy and fallback backends to bit-identical results, so this toggle selects an implementation, never a behaviour
if _env_backend == "python":
    _np = None
elif _env_backend == "numpy":
    if _np is None:
        raise ImportError(
            "REPRO_COLUMNS_BACKEND=numpy requested but numpy is not importable"
        )
elif _env_backend:
    raise ValueError(
        f"REPRO_COLUMNS_BACKEND must be 'numpy' or 'python', got {_env_backend!r}"
    )

HAVE_NUMPY = _np is not None
#: The column backend selected at import time ("numpy" or "python").
BACKEND = "numpy" if HAVE_NUMPY else "python"

# Health codes (mirrored by repro.machine.cpu.CpuHealth; kept as plain
# ints here so the columns module has no dependency on the machine
# layer).
HEALTH_ONLINE = 0
HEALTH_DEGRADED = 1
HEALTH_OFFLINE = 2

#: Owner column value meaning "idle" (no job owns the CPU).
NO_OWNER = -1

# Below this batch size the numpy backend uses the same scalar loops as
# the fallback: array round-trips cost more than they save on a handful
# of elements.  Results are bit-identical either way (parity-tested),
# so this is purely a latency knob.
_VECTOR_MIN = 24


def _pack_f64(values: Sequence[float]) -> bytes:
    """Canonical little-endian packing of a float64 column."""
    return struct.pack("<%dd" % len(values), *values)


def _pack_i64(values: Sequence[int]) -> bytes:
    return struct.pack("<%dq" % len(values), *values)


def _unpack_f64(blob: bytes) -> List[float]:
    return list(struct.unpack("<%dd" % (len(blob) // 8), blob))


def _unpack_i64(blob: bytes) -> List[int]:
    return list(struct.unpack("<%dq" % (len(blob) // 8), blob))


# ----------------------------------------------------------------------
# per-CPU columns
# ----------------------------------------------------------------------
class CpuColumns:
    """Packed ownership/burst state for all CPUs of one machine.

    Columns (one slot per CPU id):

    ======== ======= ==============================================
    column   dtype   meaning
    ======== ======= ==============================================
    owner    int64   owning job id, ``NO_OWNER`` (-1) when idle
    app      str     application name while owned, ``""`` when idle
    since    float64 time the current burst (busy or idle) started
    busy     float64 accumulated busy seconds
    switches int64   ownership changes seen by this CPU
    health   int8    HEALTH_ONLINE / HEALTH_DEGRADED / HEALTH_OFFLINE
    ======== ======= ==============================================

    The batched kernels (:meth:`seize`, :meth:`release`,
    :meth:`flush_all`) replace what used to be one ``CpuState.assign``
    call per CPU per event.  Burst emission into the trace stays
    per-record (the trace API is row-oriented) and happens in ascending
    position order — exactly the order the old per-CPU loops used.

    Storage is always packed ``array``/``bytearray`` columns — scalar
    indexing into them is as fast as lists, and pickled bytes are
    identical under both backends.  When numpy is available the float
    kernels additionally hold *zero-copy* ``np.frombuffer`` views over
    the same buffers and switch to vectorized updates for large
    batches; writes through a view land in the packed column, so the
    two paths share one source of truth.  (The columns never resize,
    so the buffers — and the views — stay valid for the store's
    lifetime.)
    """

    __slots__ = ("n", "owner", "app", "since", "busy", "switches", "health",
                 "_np_since", "_np_busy")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"need at least one CPU, got {n}")
        self.n = n
        self.app: List[str] = [""] * n
        self.owner = array("q", bytes(8 * n))
        self.since = array("d", bytes(8 * n))
        self.busy = array("d", bytes(8 * n))
        self.switches = array("q", bytes(8 * n))
        self.health = bytearray(n)
        for i in range(n):
            self.owner[i] = NO_OWNER
        self._init_views()

    def _init_views(self) -> None:
        if HAVE_NUMPY:
            self._np_since = _np.frombuffer(self.since, dtype=_np.float64)
            self._np_busy = _np.frombuffer(self.busy, dtype=_np.float64)
        else:
            self._np_since = None
            self._np_busy = None

    # ------------------------------------------------------------------
    # scalar access (cold paths: faults, queries, the CpuState view)
    # ------------------------------------------------------------------
    def owner_of(self, i: int) -> Optional[int]:
        """Owning job id of CPU *i*, or ``None`` when idle."""
        value = self.owner[i]
        return None if value == NO_OWNER else int(value)

    def assign_one(
        self,
        i: int,
        job_id: Optional[int],
        app_name: str,
        now: float,
        emit: Optional[Callable[[int, int, str, float, float], None]] = None,
    ) -> Optional[int]:
        """Scalar ownership switch — the pre-columnar ``CpuState.assign``.

        Closes the running burst (if any), hands ``(cpu, owner, app,
        start, end)`` to *emit*, and returns the previous owner id (or
        ``None``).  The batched kernels below are loop-fused versions
        of exactly this function; the parity suite holds them to it.
        """
        previous = self.owner_of(i)
        if previous == job_id:
            return previous
        if previous is not None:
            since = float(self.since[i])
            duration = now - since
            if duration < 0:
                raise ValueError(
                    f"cpu {i}: time went backwards ({since} -> {now})"
                )
            self.busy[i] += duration
            if emit is not None:
                emit(i, previous, self.app[i], since, now)
        self.owner[i] = NO_OWNER if job_id is None else job_id
        self.app[i] = app_name if job_id is not None else ""
        self.since[i] = now
        self.switches[i] += 1
        return previous

    def flush_one(
        self,
        i: int,
        now: float,
        emit: Optional[Callable[[int, int, str, float, float], None]] = None,
    ) -> None:
        """Scalar burst flush — the pre-columnar ``CpuState.flush``."""
        if self.owner[i] == NO_OWNER:
            return
        started = float(self.since[i])
        duration = now - started
        if duration < 0:
            raise ValueError(f"cpu {i}: flush before burst start")
        self.busy[i] += duration
        if emit is not None and duration > 0:
            emit(i, int(self.owner[i]), self.app[i], started, now)
        self.since[i] = now

    # ------------------------------------------------------------------
    # batched kernels (hot paths)
    # ------------------------------------------------------------------
    def seize(self, ids: Sequence[int], job_id: int, app_name: str, now: float) -> None:
        """Assign the idle CPUs *ids* to *job_id* in one call.

        Every id must currently be idle (the machine only grows from
        its free set); a non-idle id raises ``ValueError`` before any
        column is modified.
        """
        owner = self.owner
        app = self.app
        since = self.since
        switches = self.switches
        for i in ids:
            if owner[i] != NO_OWNER:
                raise ValueError(
                    f"cpu {i}: seize of non-idle CPU (owner {int(owner[i])})"
                )
            owner[i] = job_id
            app[i] = app_name
            since[i] = now
            switches[i] += 1

    def release(
        self,
        ids: Sequence[int],
        now: float,
        emit: Optional[Callable[[int, int, str, float, float], None]] = None,
    ) -> None:
        """Return the owned CPUs *ids* to idle, closing their bursts.

        Bursts are handed to *emit* in the order of *ids* — callers
        pass ids in the same order the old per-CPU loop iterated, so
        trace contents are byte-identical.  ``busy[i] += now -
        since[i]`` is elementwise, hence bit-identical between the
        vectorized and scalar paths.
        """
        owner = self.owner
        since = self.since
        busy = self.busy
        app = self.app
        switches = self.switches
        if emit is None and HAVE_NUMPY and len(ids) >= _VECTOR_MIN:
            idx = _np.asarray(ids, dtype=_np.intp)
            started = self._np_since[idx]
            duration = now - started
            if _np.any(duration < 0):
                bad = ids[int(_np.argmax(duration < 0))]
                raise ValueError(
                    f"cpu {bad}: time went backwards "
                    f"({since[bad]} -> {now})"
                )
            self._np_busy[idx] += duration
            self._np_since[idx] = now
            for i in ids:
                owner[i] = NO_OWNER
                app[i] = ""
                switches[i] += 1
            return
        for i in ids:
            started = since[i]
            duration = now - started
            if duration < 0:
                raise ValueError(
                    f"cpu {i}: time went backwards ({started} -> {now})"
                )
            busy[i] += duration
            if emit is not None:
                emit(i, int(owner[i]), app[i], float(started), now)
            owner[i] = NO_OWNER
            app[i] = ""
            since[i] = now
            switches[i] += 1

    def flush_all(
        self,
        now: float,
        emit: Optional[Callable[[int, int, str, float, float], None]] = None,
    ) -> None:
        """Close every in-progress busy burst without changing owners.

        End-of-run accounting: owned CPUs accumulate ``now - since``
        into ``busy`` and restart their burst at *now*.  Zero-length
        bursts are accumulated but not emitted, matching the scalar
        reference.
        """
        owner = self.owner
        since = self.since
        busy = self.busy
        if emit is None and HAVE_NUMPY and self.n >= _VECTOR_MIN:
            mask = _np.frombuffer(owner, dtype=_np.int64) != NO_OWNER
            started = self._np_since[mask]
            duration = now - started
            if _np.any(duration < 0):
                raise ValueError("flush before burst start")
            self._np_busy[mask] += duration
            self._np_since[mask] = now
            return
        for i in range(self.n):
            if owner[i] == NO_OWNER:
                continue
            started = since[i]
            duration = now - started
            if duration < 0:
                raise ValueError(f"cpu {i}: flush before burst start")
            busy[i] += duration
            if emit is not None and duration > 0:
                emit(i, int(owner[i]), self.app[i], float(started), now)
            since[i] = now

    # ------------------------------------------------------------------
    # canonical serialization (backend-independent, packed)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "owner": _pack_i64(self.owner),
            "app": list(self.app),
            "since": _pack_f64(self.since),
            "busy": _pack_f64(self.busy),
            "switches": _pack_i64(self.switches),
            "health": bytes(self.health),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.n = state["n"]
        self.app = list(state["app"])
        self.owner = array("q", _unpack_i64(state["owner"]))
        self.since = array("d", _unpack_f64(state["since"]))
        self.busy = array("d", _unpack_f64(state["busy"]))
        self.switches = array("q", _unpack_i64(state["switches"]))
        self.health = bytearray(state["health"])
        self._init_views()


# ----------------------------------------------------------------------
# speedup-curve kernels
# ----------------------------------------------------------------------
def amdahl_many(serial_fraction: float, procs: Sequence[float]) -> List[float]:
    """Evaluate Amdahl's law at a vector of processor counts.

    Kernel form of ``AmdahlSpeedup._compute``: ``p <= 0`` maps to 0.0,
    ``p < 1`` scales linearly (time-shared fraction of a CPU), and the
    parallel region follows ``1 / (f + (1 - f) / p)``.
    """
    if HAVE_NUMPY and len(procs) >= _VECTOR_MIN:
        p = _np.asarray(procs, dtype=_np.float64)
        out = _np.empty(len(procs), dtype=_np.float64)
        zero = p <= 0.0
        frac = ~zero & (p < 1.0)
        full = ~zero & ~frac
        out[zero] = 0.0
        out[frac] = p[frac]
        f = serial_fraction
        pf = p[full]
        denom = f + (1.0 - f) / pf
        if _np.any(denom == 0.0):
            # exact parity with the scalar reference, which raises here
            # (f == 0.0 with an infinite processor count)
            raise ZeroDivisionError("float division by zero")
        out[full] = 1.0 / denom
        return [float(v) for v in out]
    return [reference_amdahl(serial_fraction, p) for p in procs]


def reference_amdahl(serial_fraction: float, procs: float) -> float:
    """Retained scalar reference for :func:`amdahl_many` (bit-exact)."""
    if procs <= 0:
        return 0.0
    if procs < 1.0:
        return procs
    f = serial_fraction
    return 1.0 / (f + (1.0 - f) / procs)


def pchip_many(
    xs: Sequence[float],
    ys: Sequence[float],
    slopes: Sequence[float],
    procs: Sequence[float],
) -> List[float]:
    """Evaluate a monotone cubic (PCHIP) curve at a vector of points.

    Kernel form of ``TabulatedSpeedup._compute``: below ``xs[0]`` the
    curve scales linearly through the origin, beyond ``xs[-1]`` it
    saturates flat, and interior points use the cubic Hermite basis.

    This kernel is a *batched scalar loop under both backends*: the
    Hermite basis contains ``(1 - t) ** 2``, and CPython's float
    ``**`` (libm ``pow``) is not bit-identical to numpy's power
    ufunc on this expression (numpy strength-reduces small integer
    exponents to multiplication; measured divergence ~0.08% of
    inputs).  Vectorizing it would silently fork the two backends,
    so only the pure ``* / + -`` kernels (:func:`amdahl_many`,
    :func:`predicted_efficiency_many`, the burst kernels) get numpy
    paths.  The batching still pays: one call evaluates the whole
    candidate vector against a locally-bound curve table instead of
    re-entering the memoized scalar path per point.
    """
    return [reference_pchip(xs, ys, slopes, p) for p in procs]


def reference_pchip(
    xs: Sequence[float],
    ys: Sequence[float],
    slopes: Sequence[float],
    procs: float,
) -> float:
    """Retained scalar reference for :func:`pchip_many` (bit-exact)."""
    if procs <= 0:
        return 0.0
    if procs < xs[0]:
        return procs * ys[0] / xs[0]
    if procs >= xs[-1]:
        return ys[-1]
    lo, hi = 0, len(xs) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if xs[mid] <= procs:
            lo = mid
        else:
            hi = mid
    h = xs[hi] - xs[lo]
    t = (procs - xs[lo]) / h
    # Keep the exact expression shapes of the original scalar code
    # (including ``** 2``): pow is not bit-identical to multiplication
    # here, and these bits are pinned by the byte-identity suite.
    h00 = (1 + 2 * t) * (1 - t) ** 2
    h10 = t * (1 - t) ** 2
    h01 = t * t * (3 - 2 * t)
    h11 = t * t * (t - 1)
    return (
        h00 * ys[lo]
        + h10 * h * slopes[lo]
        + h01 * ys[hi]
        + h11 * h * slopes[hi]
    )


def predicted_efficiency_many(
    overhead: float, procs: Sequence[float], cap: float
) -> List[float]:
    """Evaluate ``min(1 / (1 + a * (p - 1)), cap)`` at a vector of points.

    Kernel form of the equal-efficiency RM's analytic efficiency model
    (``eff(p) = 1 / (1 + a (p - 1))``).  A denominator at or below
    ``1 / cap`` — including the negative denominators a superlinear
    fit produces — clamps to *cap*, exactly as the scalar
    ``predicted_efficiency`` does.  Callers validate ``p >= 1``.
    """
    if HAVE_NUMPY and len(procs) >= _VECTOR_MIN:
        p = _np.asarray(procs, dtype=_np.float64)
        out = _np.empty(len(procs), dtype=_np.float64)
        denom = 1.0 + overhead * (p - 1.0)
        clamped = denom <= 1.0 / cap
        out[clamped] = cap
        free = ~clamped
        out[free] = _np.minimum(1.0 / denom[free], cap)
        return [float(v) for v in out]
    return [reference_predicted_efficiency(overhead, p, cap) for p in procs]


def reference_predicted_efficiency(overhead: float, procs: float, cap: float) -> float:
    """Retained scalar reference for :func:`predicted_efficiency_many`."""
    denom = 1.0 + overhead * (procs - 1.0)
    if denom <= 1.0 / cap:
        return cap
    return min(1.0 / denom, cap)


# ----------------------------------------------------------------------
# per-job timing columns
# ----------------------------------------------------------------------
class RunningMean:
    """Running-sum fold of a sample stream (sum / count / max-procs).

    Replaces the SelfAnalyzer's per-sample list append + whole-list
    ``sum()`` at baseline close.  Accumulating ``total += x`` per
    sample is bit-identical to an explicit left fold over the retained
    list (``acc = 0.0; acc = acc + x`` per element) — the parity suite
    checks this with NaN/inf/-0.0 payloads.  It is *not* guaranteed to
    match the ``sum()`` builtin on every interpreter: CPython 3.12+
    uses Neumaier compensated summation for floats, and NaN-payload
    propagation differs between the two foldings even earlier.  Every
    consumer that needs fold-equality (``repro.metrics``) therefore
    folds through :func:`repro.metrics.stats.fold_sum`, never the
    builtin.
    """

    __slots__ = ("total", "count", "max_procs")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self.max_procs = 0

    def add(self, value: float, procs: int) -> None:
        self.total += value
        self.count += 1
        if procs > self.max_procs:
            self.max_procs = procs

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of zero samples")
        return self.total / self.count

    def clear(self) -> None:
        self.total = 0.0
        self.count = 0
        self.max_procs = 0

    def __getstate__(self) -> Tuple[bytes, int, int]:
        return (_pack_f64([self.total]), self.count, self.max_procs)

    def __setstate__(self, state: Tuple[bytes, int, int]) -> None:
        self.total = _unpack_f64(state[0])[0]
        self.count = state[1]
        self.max_procs = state[2]


class IterationColumns:
    """Columnar (iteration, procs, duration) log for one application.

    Replaces a per-iteration list of 3-tuples (three boxed objects plus
    a tuple per row) with three packed columns, cutting both resident
    size and checkpoint bytes.  Rows materialize lazily on access;
    equality against a plain list of tuples is preserved for callers
    that compare logs directly.
    """

    __slots__ = ("iterations", "procs", "durations")

    def __init__(self) -> None:
        self.iterations = array("q")
        self.procs = array("q")
        self.durations = array("d")

    def append(self, row: Tuple[int, int, float]) -> None:
        self.iterations.append(row[0])
        self.procs.append(row[1])
        self.durations.append(row[2])

    def __len__(self) -> int:
        return len(self.iterations)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                (self.iterations[i], self.procs[i], self.durations[i])
                for i in range(*index.indices(len(self.iterations)))
            ]
        return (self.iterations[index], self.procs[index], self.durations[index])

    def __iter__(self):
        for i in range(len(self.iterations)):
            yield (self.iterations[i], self.procs[i], self.durations[i])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IterationColumns):
            return (
                self.iterations == other.iterations
                and self.procs == other.procs
                and self.durations == other.durations
            )
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                tuple(a) == tuple(b) for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IterationColumns({list(self)!r})"

    def __getstate__(self) -> Dict[str, bytes]:
        return {
            "iterations": _pack_i64(self.iterations),
            "procs": _pack_i64(self.procs),
            "durations": _pack_f64(self.durations),
        }

    def __setstate__(self, state: Dict[str, bytes]) -> None:
        self.iterations = array("q", _unpack_i64(state["iterations"]))
        self.procs = array("q", _unpack_i64(state["procs"]))
        self.durations = array("d", _unpack_f64(state["durations"]))
