"""Deterministic discrete-event engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events
are callbacks scheduled at absolute simulation times.  Two events at
the same time are ordered first by an explicit integer *priority*
(lower runs first) and then by insertion order, which makes every run
fully deterministic for a given seed and schedule.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> _ = sim.schedule_at(1.0, lambda: seen.append("a"))
>>> _ = sim.schedule_at(0.5, lambda: seen.append("b"))
>>> sim.run()
1.0
>>> seen
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Typical causes are scheduling an event in the past or running a
    simulator that has been explicitly stopped with an error.
    """


class Event:
    """A single scheduled callback.

    Events should be created through :meth:`Simulator.schedule_at` or
    :meth:`Simulator.schedule_after`, never directly.  An event can be
    cancelled before it fires; cancellation is O(1) (the event is left
    in the heap and skipped when popped).

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-break for events at the same time; lower fires first.
    label:
        Free-form description used in error messages and debugging.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def sort_key(self) -> tuple:
        """Ordering key: (time, priority, insertion sequence)."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {self.label!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` objects with lazy deletion."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert *event* into the queue."""
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook called when a pushed event is cancelled."""
        self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    The simulator is deliberately small: it owns the clock and the
    event queue, and nothing else.  All domain state lives in the
    components that schedule callbacks on it.

    Parameters
    ----------
    start_time:
        Initial clock value (defaults to 0).
    """

    #: Default priority for ordinary events.
    PRIORITY_NORMAL = 100
    #: Priority for bookkeeping that must run before normal events.
    PRIORITY_EARLY = 10
    #: Priority for events that must observe everything else first.
    PRIORITY_LATE = 1000

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback(*args)* at absolute time *time*.

        Raises
        ------
        SimulationError
            If *time* lies in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before now={self._now}"
            )
        event = Event(max(time, self._now), priority, next(self._seq), callback, args, label)
        self._queue.push(event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback(*args)* after a non-negative *delay*."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, *until* passes, or stop().

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly
            after this time; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests; raise if more events fire.

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired_this_run = 0
        try:
            while True:
                if self._stopped:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                self._events_fired += 1
                fired_this_run += 1
                if max_events is not None and fired_this_run > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway schedule"
                    )
                event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and not self._stopped and self._queue.peek_time() is None:
            # Queue drained before the horizon: clock still advances to it.
            self._now = max(self._now, until)
        return self._now
