"""Deterministic discrete-event engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events
are callbacks scheduled at absolute simulation times.  Two events at
the same time are ordered first by an explicit integer *priority*
(lower runs first) and then by insertion order, which makes every run
fully deterministic for a given seed and schedule.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> _ = sim.schedule_at(1.0, lambda: seen.append("a"))
>>> _ = sim.schedule_at(0.5, lambda: seen.append("b"))
>>> sim.run()
1.0
>>> seen
['b', 'a']
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional

#: compaction threshold: the queue physically drops lazily-deleted
#: events once the heap holds at least this many entries and live
#: events make up less than half of them.  Keeps long-running
#: simulations (and their snapshots) from accumulating unbounded
#: cancelled-event garbage while leaving short runs alone.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Typical causes are scheduling an event in the past or running a
    simulator that has been explicitly stopped with an error.
    """


class Event:
    """A single scheduled callback.

    Events should be created through :meth:`Simulator.schedule_at` or
    :meth:`Simulator.schedule_after`, never directly.  An event can be
    cancelled before it fires; cancellation is O(1) (the event is left
    in the heap and skipped when popped).

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-break for events at the same time; lower fires first.
    label:
        Free-form description used in error messages and debugging.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label",
                 "_cancelled", "_fired", "_cancel_noted")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._fired = False
        self._cancel_noted = False

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op.  Prefer :meth:`Simulator.cancel` (or
        :meth:`EventQueue.cancel`), which also keeps the queue's live
        count correct immediately; a bare ``cancel()`` is reconciled
        lazily when the event reaches the top of the heap.
        """
        if not self._fired:
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether this event has already been popped for execution."""
        return self._fired

    def sort_key(self) -> tuple:
        """Ordering key: (time, priority, insertion sequence)."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Hot path: this comparison runs O(log n) times per push/pop,
        # so avoid building the sort_key() tuples.
        if self.time != other.time:  # repro: allow(DET106): heap ordering must match heapq's exact comparison; an epsilon here would make __lt__ intransitive and corrupt the heap
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self._cancelled
            else "fired" if self._fired
            else "pending"
        )
        return f"Event(t={self.time:.6f}, prio={self.priority}, {self.label!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` objects with lazy deletion.

    Cancellation never removes an event from the heap; the event is
    marked and skipped when it reaches the top.  All lazy-deletion
    bookkeeping funnels through :meth:`_purge`, so the live count
    stays consistent no matter how cancel / peek / pop interleave.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0
        #: cancellations pre-paid through the legacy note_cancelled()
        #: hook, to be reconciled when the events surface in _purge().
        self._noted_pending = 0

    def push(self, event: Event) -> None:
        """Insert *event* into the queue."""
        heapq.heappush(self._heap, event)
        self._live += 1

    def cancel(self, event: Event) -> bool:
        """Cancel *event* with immediate live-count bookkeeping.

        Returns ``True`` if the event was live and is now cancelled.
        Cancelling an event that already fired — or was already
        cancelled — is a true no-op, so the live count can never be
        driven negative by repeated or late cancels.
        """
        if event._fired or event._cancelled:
            return False
        event._cancelled = True
        event._cancel_noted = True
        self._live -= 1
        self._check_live()
        self._maybe_compact()
        return True

    def _purge(self) -> None:
        """Drop cancelled events from the top of the heap.

        The single place lazy deletion happens.  Events cancelled
        through :meth:`cancel` were already accounted; events cancelled
        behind the queue's back (bare ``Event.cancel()``) are accounted
        here, consuming any pre-paid ``note_cancelled`` credits first.
        """
        heap = self._heap
        while heap and heap[0]._cancelled:
            event = heapq.heappop(heap)
            if not event._cancel_noted:
                event._cancel_noted = True
                if self._noted_pending > 0:
                    self._noted_pending -= 1
                else:
                    self._live -= 1
        self._check_live()

    def _check_live(self) -> None:
        if self._live < 0:
            raise SimulationError(
                "event queue live count went negative — an event was "
                "cancelled twice or after it fired"
            )

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.  The
        returned event is marked fired, so a later cancel is a no-op.
        """
        return self.pop_before(None)

    def pop_before(self, horizon: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event at or before *horizon*.

        Returns ``None`` when the queue is empty or the earliest live
        event fires strictly after *horizon* (the event stays queued).
        ``horizon=None`` means no bound.  This is the run loop's single
        per-event queue operation: one purge, one heappop.
        """
        self._purge()
        heap = self._heap
        if not heap:
            return None
        if horizon is not None and heap[0].time > horizon:
            return None
        event = heapq.heappop(heap)
        event._fired = True
        self._live -= 1
        return event

    def peek(self) -> Optional[Event]:
        """The earliest live event without removing it, or ``None``."""
        self._purge()
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        event = self.peek()
        return None if event is None else event.time

    def note_cancelled(self) -> None:
        """Bookkeeping hook called when a pushed event is cancelled.

        Legacy path for callers that cancel via ``Event.cancel()``
        directly; prefer :meth:`cancel`.  The decrement is recorded as
        pre-paid so :meth:`_purge` does not double-count the event.
        """
        self._live -= 1
        self._noted_pending += 1
        self._check_live()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Compact when the dead fraction of the heap grows too large."""
        if (len(self._heap) >= _COMPACT_MIN_HEAP
                and self._live * 2 < len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Physically drop every cancelled event from the heap.

        Lazy deletion trades memory for O(1) cancels; on long runs
        (or before a snapshot) the dead entries are reclaimed here.
        Pop order is unaffected: event ordering is a total order
        (time, priority, insertion sequence), so re-heapifying the
        survivors cannot change which event surfaces next.  The same
        bookkeeping rules as :meth:`_purge` apply to events cancelled
        behind the queue's back, and the ``_live`` invariant — live
        count equals the number of non-cancelled events in the heap —
        is checked afterwards.
        """
        heap = self._heap
        if self._live == len(heap):
            return
        survivors: List[Event] = []
        for event in heap:
            if not event._cancelled:
                survivors.append(event)
            elif not event._cancel_noted:
                event._cancel_noted = True
                if self._noted_pending > 0:
                    self._noted_pending -= 1
                else:
                    self._live -= 1
        heapq.heapify(survivors)
        self._heap = survivors
        self._check_live()
        if self._noted_pending == 0 and self._live != len(survivors):
            raise SimulationError(
                f"event-queue compaction broke the live invariant: "
                f"_live={self._live} but {len(survivors)} live events remain"
            )

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    The simulator is deliberately small: it owns the clock and the
    event queue, and nothing else.  All domain state lives in the
    components that schedule callbacks on it.

    Parameters
    ----------
    start_time:
        Initial clock value (defaults to 0).
    """

    #: Default priority for ordinary events.
    PRIORITY_NORMAL = 100
    #: Priority for bookkeeping that must run before normal events.
    PRIORITY_EARLY = 10
    #: Priority for events that must observe everything else first.
    PRIORITY_LATE = 1000

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self._observer: Optional[Any] = None
        self._ckpt_hook: Optional[Callable[[], None]] = None
        self._ckpt_every_events: Optional[int] = None
        self._ckpt_every_seconds: Optional[float] = None
        self._ckpt_next_events = 0
        self._ckpt_next_time = 0.0

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: host-side attachments are not state.

        Observers (the ``--sanitize`` race detector) and the
        checkpoint hook belong to the *process* driving the
        simulation, not to the simulation itself — a snapshot taken
        mid-``run`` restores as a quiescent, runnable simulator with
        neither attached (re-attach after restore if wanted).
        """
        state = dict(self.__dict__)
        state["_running"] = False
        state["_stopped"] = False
        state["_observer"] = None
        state["_ckpt_hook"] = None
        return state

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def live_labels(self) -> List[str]:
        """Labels of every live (pending) event, sorted.

        Diagnostics surface: the invariant oracle uses this to tell a
        queued job with a pending arrival/requeue event from a lost
        one, without popping anything.
        """
        return sorted(
            event.label for event in self._queue._heap if not event._cancelled
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback(*args)* at absolute time *time*.

        Raises
        ------
        SimulationError
            If *time* lies in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before now={self._now}"
            )
        event = Event(max(time, self._now), priority, next(self._seq), callback, args, label)
        self._queue.push(event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback(*args)* after a non-negative *delay*.

        Fast path of :meth:`schedule_at`: ``now + delay`` can never lie
        in the past, so the event is built and pushed directly.  This
        is the hottest scheduling call (every iteration end, report and
        timer goes through it).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        event = Event(
            self._now + delay, priority, next(self._seq), callback, args, label
        )
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Cancelling an event that already fired (or was already
        cancelled) is a no-op — the live-event count is only adjusted
        for events genuinely still in the queue.
        """
        self._queue.cancel(event)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def attach_observer(self, observer: Any) -> None:
        """Attach an event observer (e.g. the ``--sanitize`` detector).

        The observer's ``on_event(event)`` is called for every event
        the run loop fires, *before* the event's callback executes.
        Observers must only observe: they get the live
        :class:`Event` for inspection but must not mutate it,
        schedule, or cancel — the engine's byte-identity contract is
        that a run with an observer equals a run without one.  One
        observer at a time; ``None``-safe dispatch keeps the
        unobserved hot path to a single attribute check per event.
        """
        self._observer = observer

    def detach_observer(self) -> None:
        """Remove the attached observer, if any."""
        self._observer = None

    def compact(self) -> None:
        """Reclaim lazily-deleted events from the queue now.

        Called automatically when the dead fraction grows large and by
        :meth:`repro.checkpoint.session.SimulationSession.save` so
        snapshots never carry cancelled-event garbage.
        """
        self._queue.compact()

    def set_checkpoint_hook(
        self,
        hook: Callable[[], None],
        every_events: Optional[int] = None,
        every_sim_seconds: Optional[float] = None,
    ) -> None:
        """Install *hook* to run periodically **between** events.

        The hook fires after an event's callback returns, once
        *every_events* events have fired since the last checkpoint
        and/or the clock advanced *every_sim_seconds* past it
        (whichever trips first; at least one cadence is required).
        Firing between events means the hook observes a well-defined
        prefix of the event history — the foundation of the
        checkpoint subsystem's byte-identical restore guarantee.  The
        hook must not schedule, cancel or mutate simulation state.
        Like observers, the hook is process-local: it is dropped when
        the simulator is pickled.
        """
        if every_events is None and every_sim_seconds is None:
            raise SimulationError(
                "checkpoint hook needs every_events and/or every_sim_seconds"
            )
        if every_events is not None and every_events < 1:
            raise SimulationError(
                f"every_events must be >= 1, got {every_events}"
            )
        if every_sim_seconds is not None and every_sim_seconds <= 0:
            raise SimulationError(
                f"every_sim_seconds must be positive, got {every_sim_seconds}"
            )
        self._ckpt_hook = hook
        self._ckpt_every_events = every_events
        self._ckpt_every_seconds = every_sim_seconds
        self._arm_checkpoint()

    def clear_checkpoint_hook(self) -> None:
        """Remove the checkpoint hook, if any."""
        self._ckpt_hook = None

    def _arm_checkpoint(self) -> None:
        if self._ckpt_every_events is not None:
            self._ckpt_next_events = self._events_fired + self._ckpt_every_events
        if self._ckpt_every_seconds is not None:
            self._ckpt_next_time = self._now + self._ckpt_every_seconds

    def _checkpoint_tick(self) -> None:
        """Fire the checkpoint hook if a cadence threshold passed."""
        due = (
            (self._ckpt_every_events is not None
             and self._events_fired >= self._ckpt_next_events)
            or (self._ckpt_every_seconds is not None
                and self._now >= self._ckpt_next_time)
        )
        if not due:
            return
        hook = self._ckpt_hook
        assert hook is not None
        hook()
        self._arm_checkpoint()

    def step(self, n_events: int = 1) -> int:
        """Fire up to *n_events* pending events; return the number fired.

        The single-event sibling of :meth:`run`: the protocol fuzzer
        (and any interactive driver) interleaves external stimuli with
        bounded slices of simulation progress.  Semantics match the run
        loop exactly — observer notification before each callback, the
        checkpoint hook between events — so a run advanced entirely
        through ``step`` is byte-identical to one driven by ``run``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if n_events < 0:
            raise SimulationError(f"n_events must be >= 0, got {n_events}")
        self._running = True
        self._stopped = False
        fired = 0
        queue = self._queue
        try:
            while fired < n_events and not self._stopped:
                event = queue.pop_before(None)
                if event is None:
                    break
                self._now = event.time
                self._events_fired += 1
                fired += 1
                if self._observer is not None:
                    self._observer.on_event(event)
                event.callback(*event.args)
                if self._ckpt_hook is not None:
                    self._checkpoint_tick()
        finally:
            self._running = False
        return fired

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, *until* passes, or stop().

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly
            after this time; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests; raise if more events fire.

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired_this_run = 0
        queue = self._queue
        try:
            while not self._stopped:
                event = queue.pop_before(until)
                if event is None:
                    break
                self._now = event.time
                self._events_fired += 1
                fired_this_run += 1
                if max_events is not None and fired_this_run > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway schedule"
                    )
                if self._observer is not None:
                    self._observer.on_event(event)
                event.callback(*event.args)
                if self._ckpt_hook is not None:
                    self._checkpoint_tick()
        finally:
            self._running = False
        if until is not None and not self._stopped:
            # Horizon given and not stopped: whether the queue drained
            # or the next event lies beyond it, the clock advances to
            # the horizon.
            self._now = max(self._now, until)
        return self._now
