"""Discrete-event simulation substrate.

The whole NANOS execution environment (queuing system, resource
manager, runtime library, applications, machine) is driven by a single
deterministic discrete-event :class:`~repro.sim.engine.Simulator`.

This package is intentionally generic: it knows nothing about
scheduling policies or applications.  Higher layers schedule callbacks
on the simulator and react to each other through those callbacks.
"""

from repro.sim.engine import Event, EventQueue, SimulationError, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "SimulationError",
    "Simulator",
    "RandomStreams",
]
