"""SelfTuning: application-level processor selection (related work).

The paper's §2 describes Nguyen, Zahorjan and Vaswani's *SelfTuning*:
"dynamically measure the efficiency achieved in iterative parallel
regions and select the best number of processors to execute them [...]
applied at the runtime level."  Voss and Eigenmann's dynamic
serialization is the limiting case (drop to one processor when
overheads dominate).

Unlike PDPA — a system-level policy moving processors *between*
applications — SelfTuning is purely local: the application may use
*fewer* processors than it was allocated if that makes its iterations
faster, but it cannot obtain more.  The tuner is an online hill
climber over the measured iteration times:

1. run a few iterations at the current count, average the time;
2. probe a neighbouring count (down first, then up);
3. move if the probe was faster by more than a tolerance, else stay
   and back off probing for a while.

The tuner is attached per job through
:attr:`repro.runtime.nthlib.RuntimeConfig.self_tuning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class SelfTuningConfig:
    """Hill-climber parameters.

    Attributes
    ----------
    samples_per_count:
        Iterations averaged before judging a processor count.
    probe_step:
        Distance of a probe from the current count.
    improvement_tolerance:
        Fractional improvement a probe must show to be adopted
        (guards against chasing noise).
    backoff_iterations:
        Iterations to wait after a failed probe before probing again.
    """

    samples_per_count: int = 2
    probe_step: int = 2
    improvement_tolerance: float = 0.03
    backoff_iterations: int = 6

    def __post_init__(self) -> None:
        if self.samples_per_count < 1:
            raise ValueError("samples_per_count must be >= 1")
        if self.probe_step < 1:
            raise ValueError("probe_step must be >= 1")
        if self.improvement_tolerance < 0:
            raise ValueError("improvement_tolerance must be >= 0")
        if self.backoff_iterations < 0:
            raise ValueError("backoff_iterations must be >= 0")


class SelfTuner:
    """Online search for the fastest processor count <= the allocation."""

    def __init__(self, config: Optional[SelfTuningConfig] = None) -> None:
        self.config = config or SelfTuningConfig()
        self._current: Optional[int] = None
        self._probing: Optional[int] = None
        self._samples: List[float] = []
        self._best_time: Dict[int, float] = {}
        self._backoff = 0
        #: (iteration_count_adopted) history, for diagnostics
        self.moves: List[int] = []

    # ------------------------------------------------------------------
    # the runtime asks before every iteration
    # ------------------------------------------------------------------
    def proposal(self, allocation: int) -> int:
        """Processors the application should use this iteration."""
        if allocation < 1:
            raise ValueError(f"allocation must be >= 1, got {allocation}")
        if self._current is None:
            self._current = allocation
            self.moves.append(allocation)
        # The allocation is a hard ceiling: clamp both the settled
        # count and any in-flight probe.
        self._current = min(self._current, allocation)
        if self._probing is not None:
            self._probing = min(self._probing, allocation)
            if self._probing == self._current:
                self._probing = None
                self._samples.clear()
        return self._probing if self._probing is not None else self._current

    # ------------------------------------------------------------------
    # ...and reports after it
    # ------------------------------------------------------------------
    def observe(self, procs: int, duration: float) -> None:
        """Feed the measured duration of the iteration just executed."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if self._current is None:
            return
        target = self._probing if self._probing is not None else self._current
        if procs != target:
            # The allocation changed under us; restart sampling.
            self._samples.clear()
            return
        self._samples.append(duration)
        if len(self._samples) < self.config.samples_per_count:
            return
        mean_time = sum(self._samples) / len(self._samples)
        self._samples.clear()
        self._best_time[target] = mean_time

        if self._probing is None:
            self._maybe_start_probe()
            return
        self._finish_probe(mean_time)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _maybe_start_probe(self) -> None:
        if self._backoff > 0:
            self._backoff -= 1
            return
        assert self._current is not None
        down = max(1, self._current - self.config.probe_step)
        up = self._current + self.config.probe_step
        # Prefer the direction we have not measured, downward first
        # (serialisation is the cheap win for overhead-dominated loops).
        for candidate in (down, up):
            if candidate != self._current and candidate not in self._best_time:
                self._probing = candidate
                return
        # Both measured: probe the faster neighbour again to re-check.
        best = min((down, up), key=lambda c: self._best_time.get(c, float("inf")))
        if best != self._current:
            self._probing = best

    def _finish_probe(self, probe_time: float) -> None:
        assert self._current is not None and self._probing is not None
        settled_time = self._best_time.get(self._current)
        probed = self._probing
        self._probing = None
        if settled_time is None:
            return
        if probe_time < settled_time * (1.0 - self.config.improvement_tolerance):
            self._current = probed
            self.moves.append(probed)
        else:
            self._backoff = self.config.backoff_iterations

    @property
    def current(self) -> Optional[int]:
        """The settled processor count (None before the first call)."""
        return self._current
