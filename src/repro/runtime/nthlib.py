"""NthLib: the parallel runtime that executes jobs on the simulator.

NthLib is the application-level half of the coordination protocol: it
"requests for processors and reacts to changes in the number of
processors allocated to the application".  In this reproduction it

* drives the job through its phases (sequential startup, the
  iterative parallel region, sequential teardown) as simulator events,
* reads the allocation granted by the resource manager at every
  iteration boundary (malleability happens at parallel-region
  boundaries, exactly as for a real OpenMP code),
* runs the SelfAnalyzer's baseline measure on a reduced processor
  count, and forwards its performance reports to the resource manager.

The resource manager side of the protocol is any object implementing
the three callbacks documented on :class:`RuntimeHost`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.apps.application import IterativeApplication
from repro.qs.job import Job
from repro.runtime.selfanalyzer import PerformanceReport, SelfAnalyzer, SelfAnalyzerConfig
from repro.runtime.selftuning import SelfTuner, SelfTuningConfig
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams


class RuntimeHost:
    """Interface NthLib expects from the resource manager.

    The default implementations raise so that partial hosts fail
    loudly; :class:`repro.rm.manager.ResourceManager` provides the
    real behaviour.
    """

    def current_allocation(self, job: Job) -> int:
        """Processors currently granted to *job* (its thread count)."""
        raise NotImplementedError

    def iteration_speed_procs(self, job: Job, nominal_procs: int) -> float:
        """Effective processors powering the next iteration.

        Equal to ``nominal_procs`` under space sharing; under the
        time-shared IRIX model it is the fractional CPU share the
        job's threads actually receive.
        """
        raise NotImplementedError

    def iteration_speedup(self, job: Job, nominal_procs: int) -> float:
        """Execution rate (speedup over sequential) of the next iteration.

        The default evaluates the application's own speedup curve at
        the effective processor share.  Hosts override it for
        execution modes the curve cannot express directly — e.g.
        rigid applications folded onto fewer processors.
        """
        speed_procs = self.iteration_speed_procs(job, nominal_procs)
        return job.spec.speedup_model.speedup(speed_procs)

    def deliver_report(self, job: Job, report: PerformanceReport) -> None:
        """Receive a SelfAnalyzer performance report."""
        raise NotImplementedError

    def job_completed(self, job: Job) -> None:
        """Notification that *job* finished its last phase."""
        raise NotImplementedError


class JobPhase(enum.Enum):
    """Execution phases of an iterative application."""

    CREATED = "created"
    STARTUP = "startup"
    ITERATING = "iterating"
    TEARDOWN = "teardown"
    DONE = "done"
    #: torn down by the resource manager after a fault (crash, hang,
    #: lost partition); the host is NOT notified of completion
    ABORTED = "aborted"


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-model parameters.

    Attributes
    ----------
    noise_sigma:
        Log-normal sigma of per-iteration execution jitter.  The
        paper's measurements are noisy; this is what makes
        Equal_efficiency "too sensitive to small changes in the
        efficiency measurements".
    use_selfanalyzer:
        Whether the job is instrumented.  The native IRIX runtime
        (SGI-MP library) has no SelfAnalyzer and never reports.
    analyzer:
        SelfAnalyzer configuration (ignored when disabled).
    self_tuning:
        When set, each malleable job runs Nguyen et al.'s *SelfTuning*
        at the runtime level: it may use fewer processors than
        allocated if its own measurements say that is faster.
    reset_analyzer_on_phase_change:
        When True, the SelfAnalyzer re-measures its baseline at every
        declared work-phase boundary — the compiler-inserted reset the
        paper's §3.1 proposes for applications with variable working
        sets.  Only applies to phases declared in the application
        spec (a compiler knows them; a binary-only run does not).
    """

    noise_sigma: float = 0.015
    use_selfanalyzer: bool = True
    analyzer: SelfAnalyzerConfig = SelfAnalyzerConfig()
    self_tuning: Optional[SelfTuningConfig] = None
    reset_analyzer_on_phase_change: bool = False

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")


class NthLibRuntime:
    """Executes one job's phases as discrete events."""

    def __init__(
        self,
        sim: Simulator,
        job: Job,
        host: RuntimeHost,
        streams: RandomStreams,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.sim = sim
        self.job = job
        self.host = host
        self.config = config or RuntimeConfig()
        self.app = IterativeApplication(job.spec)
        # The SelfAnalyzer requires malleability (it controls the
        # baseline processor count); rigid MPI-style jobs run
        # uninstrumented, as in the paper's §6 status quo.
        use_analyzer = self.config.use_selfanalyzer and job.spec.malleable
        self.analyzer: Optional[SelfAnalyzer] = (
            SelfAnalyzer(job.job_id, self.config.analyzer) if use_analyzer else None
        )
        self.tuner: Optional[SelfTuner] = (
            SelfTuner(self.config.self_tuning)
            if self.config.self_tuning is not None and job.spec.malleable
            else None
        )
        self._streams = streams
        self._noise_stream = f"iter-noise:{job.job_id}"
        self.phase = JobPhase.CREATED
        self._last_iter_procs: Optional[int] = None
        #: handle of the next scheduled phase event (for abort/hang)
        self._pending: Optional[Event] = None
        #: True once hang() froze this runtime (it stops progressing
        #: but stays in its phase, exactly like a livelocked binary)
        self.hung = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin execution (called by the RM once a partition exists)."""
        if self.phase is not JobPhase.CREATED:
            raise RuntimeError(f"job {self.job.job_id}: started twice")
        self.phase = JobPhase.STARTUP
        duration = self.job.spec.t_startup * self._noise()
        self._pending = self.sim.schedule_after(
            duration, self._startup_done, label=f"startup:{self.job.job_id}"
        )

    def _startup_done(self) -> None:
        self.phase = JobPhase.ITERATING
        self._begin_iteration()

    def _begin_iteration(self) -> None:
        if self.app.remaining_iterations <= 0:
            self._begin_teardown()
            return
        if (
            self.config.reset_analyzer_on_phase_change
            and self.analyzer is not None
            and any(start == self.app.completed_iterations
                    for start, _ in self.job.spec.work_phases)
        ):
            self.analyzer.reset_baseline()
        allocation = self.host.current_allocation(self.job)
        if allocation < 1:
            raise RuntimeError(
                f"job {self.job.job_id}: zero allocation while iterating"
            )
        procs = allocation
        if self.analyzer is not None and self.analyzer.in_baseline:
            procs = self.analyzer.baseline_allocation(allocation)
        elif self.tuner is not None:
            procs = self.tuner.proposal(allocation)
        speedup = self.host.iteration_speedup(self.job, procs)
        changed_by = (
            0 if self._last_iter_procs is None else procs - self._last_iter_procs
        )
        duration = self.app.iteration_duration_from_speedup(
            speedup, alloc_changed_by=changed_by, noise_factor=self._noise()
        )
        self._last_iter_procs = procs
        self._pending = self.sim.schedule_after(
            duration,
            self._end_iteration,
            procs,
            duration,
            label=f"iter:{self.job.job_id}:{self.app.completed_iterations}",
        )

    def _end_iteration(self, procs: int, duration: float) -> None:
        iteration = self.app.completed_iterations
        self.app.record_iteration(procs, duration)
        if self.tuner is not None and not (
            self.analyzer is not None and self.analyzer.in_baseline
        ):
            self.tuner.observe(procs, duration)
        if self.analyzer is not None:
            report = self.analyzer.on_iteration(self.sim.now, iteration, procs, duration)
            if report is not None:
                self.host.deliver_report(self.job, report)
        self._begin_iteration()

    def _begin_teardown(self) -> None:
        self.phase = JobPhase.TEARDOWN
        duration = self.job.spec.t_teardown * self._noise()
        self._pending = self.sim.schedule_after(
            duration, self._complete, label=f"teardown:{self.job.job_id}"
        )

    def _complete(self) -> None:
        self.phase = JobPhase.DONE
        self._pending = None
        self.app.finished = True
        self.host.job_completed(self.job)

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def abort(self) -> None:
        """Tear the runtime down without completing the job.

        Cancels whatever phase event is in flight; the host is *not*
        notified (the resource manager calls this while killing the
        job, so it already knows).  Idempotent.
        """
        if self.phase in (JobPhase.DONE, JobPhase.ABORTED):
            return
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None
        self.phase = JobPhase.ABORTED

    def hang(self) -> None:
        """Freeze the runtime: it keeps its processors but never
        progresses again (a livelock/deadlock model).

        Only a watchdog kill (:meth:`abort` via the resource manager)
        gets the processors back.  Hanging a finished runtime is a
        no-op.
        """
        if self.phase in (JobPhase.DONE, JobPhase.ABORTED):
            return
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None
        self.hung = True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _noise(self) -> float:
        return self._streams.lognormal_factor(self._noise_stream, self.config.noise_sigma)

    @property
    def progress(self) -> float:
        """Fraction of iterations completed, in [0, 1]."""
        return self.app.completed_iterations / self.job.spec.iterations
