"""Dynamic Periodicity Detector (DPD).

When only a binary executable is available, the SelfAnalyzer cannot be
inserted by the compiler; the NANOS environment instead injects it
with a dynamic interposition tool and discovers the application's
iterative structure at runtime.  The detector "receives as input the
sequence of parallel loops executed (the address of the encapsulated
loop), and generates a Boolean indicating if it corresponds with the
initial period of a loop or not" (Freitag, Corbalan, Labarta;
IPDPS 2001).

This implementation watches the stream of region identifiers, finds
the shortest repeating period over a sliding window, and flags the
first element of each period once the period has been confirmed a
configurable number of times.
"""

from __future__ import annotations

from typing import Hashable, List, Optional


class PeriodicityDetector:
    """Online detector of the shortest repeating period in a stream.

    Parameters
    ----------
    max_period:
        Longest period length considered (bounds memory and work).
    confirmations:
        Number of full consecutive repetitions required before a
        period is reported as established.

    Example
    -------
    >>> dpd = PeriodicityDetector(max_period=4, confirmations=2)
    >>> flags = [dpd.observe(x) for x in [1, 2, 3, 1, 2, 3, 1, 2, 3, 1]]
    >>> dpd.period
    3
    >>> flags[-1]   # the last observation starts a new period
    True
    """

    def __init__(self, max_period: int = 64, confirmations: int = 2) -> None:
        if max_period < 1:
            raise ValueError(f"max_period must be >= 1, got {max_period}")
        if confirmations < 1:
            raise ValueError(f"confirmations must be >= 1, got {confirmations}")
        self.max_period = max_period
        self.confirmations = confirmations
        self._history: List[Hashable] = []
        self._period: Optional[int] = None

    @property
    def period(self) -> Optional[int]:
        """The established period length, or ``None`` if undetected."""
        return self._period

    @property
    def established(self) -> bool:
        """Whether a period has been confirmed."""
        return self._period is not None

    def observe(self, region: Hashable) -> bool:
        """Feed one region identifier; return True at period starts.

        The return value is the Boolean the paper describes: it is
        True when the new observation begins a fresh repetition of the
        established period (and on the observation that first
        establishes it), False otherwise.
        """
        self._history.append(region)
        # Bound memory: keep just enough history to confirm the
        # longest admissible period the required number of times.
        keep = self.max_period * (self.confirmations + 1)
        if len(self._history) > keep:
            self._history = self._history[-keep:]

        if self._period is None:
            self._period = self._detect()
            if self._period is not None:
                return True
            return False

        # With a period established, check it still holds; if the
        # application changed behaviour, drop it and start over.
        p = self._period
        if len(self._history) > p and self._history[-1] != self._history[-1 - p]:
            self._period = None
            return False
        # A new period starts every p observations after establishment.
        return (len(self._history) - 1) % p == 0

    def _detect(self) -> Optional[int]:
        """Find the shortest period confirmed enough times, if any."""
        history = self._history
        for period in range(1, self.max_period + 1):
            needed = period * (self.confirmations + 1)
            if len(history) < needed:
                # History only grows; longer periods need even more.
                break
            window = history[-needed:]
            if self._is_periodic(window, period):
                return period
        return None

    @staticmethod
    def _is_periodic(window: List[Hashable], period: int) -> bool:
        return all(
            window[i] == window[i + period] for i in range(len(window) - period)
        )

    def reset(self) -> None:
        """Forget all history (e.g. when the working set changes)."""
        self._history.clear()
        self._period = None
