"""The NANOS SelfAnalyzer: runtime speedup measurement.

The SelfAnalyzer "controls the execution of several (few) initial
iterations of the main outer loop with a small number of processors,
called the baseline measure. [...] The speedup is then calculated as
the relationship between the time with baseline and the time with P",
normalised by an Amdahl factor.

Our implementation mirrors that procedure:

1. The first ``baseline_iterations`` iterations run on
   ``baseline_procs`` processors (clamped to the current allocation),
   and their average duration becomes ``t_base``.
2. Every later iteration measured on ``p`` processors yields

       speedup(p) = AF * assumed_base_speedup * t_base / t_p

   where ``assumed_base_speedup`` is the speedup the analyzer assumes
   the baseline allocation achieves (exactly 1.0 when the baseline is
   a single processor) and ``AF`` is the Amdahl normalisation factor.
3. Iterations immediately following an allocation change are skipped:
   they contain data-redistribution noise, not steady-state behaviour.

Because the assumed baseline speedup is only an estimate, measured
speedups carry a systematic error for poorly scaling codes — a
real-world imperfection the scheduling policies must tolerate (and
one reason the paper imposes thresholds rather than exact targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.columns import RunningMean


@dataclass(frozen=True)
class PerformanceReport:
    """One performance sample delivered to the resource manager."""

    job_id: int
    time: float
    iteration: int
    #: processors the measured iteration ran on
    procs: int
    #: estimated speedup at ``procs``
    speedup: float
    #: measured duration of the iteration (seconds)
    iter_time: float

    @property
    def efficiency(self) -> float:
        """Estimated efficiency, ``speedup / procs``."""
        if self.procs <= 0:
            return 0.0
        return self.speedup / self.procs


@dataclass(frozen=True)
class SelfAnalyzerConfig:
    """Tunable parameters of the analyzer.

    Attributes
    ----------
    baseline_procs:
        Processor count used for the baseline measure.
    baseline_iterations:
        Number of initial iterations averaged into ``t_base``.
    assumed_base_speedup:
        Speedup the analyzer assumes at ``baseline_procs``.  Must be
        1.0 when ``baseline_procs`` is 1 (a sequential baseline is
        exact).
    amdahl_factor:
        The paper's AF normalisation; 1.0 disables it.
    report_interval:
        Deliver a report every N measured iterations.
    skip_after_realloc:
        Iterations discarded after each allocation change.
    """

    baseline_procs: int = 1
    baseline_iterations: int = 1
    assumed_base_speedup: float = 1.0
    amdahl_factor: float = 1.0
    report_interval: int = 1
    skip_after_realloc: int = 1

    def __post_init__(self) -> None:
        if self.baseline_procs < 1:
            raise ValueError("baseline_procs must be >= 1")
        if self.baseline_iterations < 1:
            raise ValueError("baseline_iterations must be >= 1")
        if self.assumed_base_speedup < 1.0:
            raise ValueError("assumed_base_speedup must be >= 1")
        if self.baseline_procs == 1 and abs(self.assumed_base_speedup - 1.0) > 1e-9:
            raise ValueError("a 1-processor baseline has speedup exactly 1.0")
        if self.amdahl_factor <= 0:
            raise ValueError("amdahl_factor must be positive")
        if self.report_interval < 1:
            raise ValueError("report_interval must be >= 1")
        if self.skip_after_realloc < 0:
            raise ValueError("skip_after_realloc must be >= 0")


class SelfAnalyzer:
    """Per-job runtime performance analyzer."""

    def __init__(self, job_id: int, config: Optional[SelfAnalyzerConfig] = None) -> None:
        self.job_id = job_id
        self.config = config or SelfAnalyzerConfig()
        #: running-sum fold of the baseline samples (columnar hot
        #: core); accumulating per sample is bit-identical to the old
        #: retained list + sum() at baseline close
        self._baseline = RunningMean()
        self._t_base: Optional[float] = None
        self._base_speedup: Optional[float] = None
        self._measured = 0
        self._skip = 0
        self._last_procs: Optional[int] = None
        self.reports: List[PerformanceReport] = []

    # ------------------------------------------------------------------
    # baseline handling
    # ------------------------------------------------------------------
    @property
    def in_baseline(self) -> bool:
        """Whether the analyzer is still collecting baseline samples."""
        return self._t_base is None

    @property
    def t_base(self) -> Optional[float]:
        """Average baseline iteration time, once established."""
        return self._t_base

    def baseline_allocation(self, current_alloc: int) -> int:
        """Processors to use while the baseline measure runs."""
        return max(1, min(self.config.baseline_procs, current_alloc))

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def on_iteration(
        self, time: float, iteration: int, procs: int, duration: float
    ) -> Optional[PerformanceReport]:
        """Record one finished iteration; maybe return a report.

        Parameters
        ----------
        time:
            Simulation time at which the iteration completed.
        iteration:
            Zero-based iteration index.
        procs:
            Processors the iteration ran on.
        duration:
            Measured wall-clock duration of the iteration.
        """
        if duration <= 0:
            raise ValueError(f"iteration duration must be positive, got {duration}")
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")

        if self._t_base is None:
            self._baseline.add(duration, procs)
            if self._baseline.count >= self.config.baseline_iterations:
                self._t_base = self._baseline.mean
                self._base_speedup = self._assumed_speedup_at(
                    self._baseline.max_procs
                )
            self._last_procs = procs
            return None

        if self._last_procs is not None and procs != self._last_procs:
            # Allocation changed: the next skip_after_realloc
            # iterations carry redistribution cost and are discarded.
            self._skip = self.config.skip_after_realloc
        self._last_procs = procs

        if self._skip > 0:
            self._skip -= 1
            return None

        self._measured += 1
        if self._measured % self.config.report_interval != 0:
            return None

        speedup = self.estimate_speedup(procs, duration)
        report = PerformanceReport(
            job_id=self.job_id,
            time=time,
            iteration=iteration,
            procs=procs,
            speedup=speedup,
            iter_time=duration,
        )
        self.reports.append(report)
        return report

    def estimate_speedup(self, procs: int, duration: float) -> float:
        """Speedup estimate for an iteration of ``duration`` on ``procs``.

        Raises
        ------
        RuntimeError
            If called before the baseline measure completed.
        """
        if self._t_base is None or self._base_speedup is None:
            raise RuntimeError("baseline measure not yet established")
        if duration <= 0:
            raise ValueError("duration must be positive")
        raw = self._base_speedup * self._t_base / duration
        return max(self.config.amdahl_factor * raw, 1e-6)

    def _assumed_speedup_at(self, procs: int) -> float:
        """Assumed speedup for the processors the baseline actually used.

        When the current allocation was smaller than the configured
        baseline, the baseline ran on fewer processors; the assumed
        speedup is interpolated linearly down to exactly 1.0 at one
        processor (a sequential baseline is exact by definition).
        """
        cfg = self.config
        if procs >= cfg.baseline_procs or cfg.baseline_procs == 1:
            return cfg.assumed_base_speedup
        if procs <= 1:
            return 1.0
        slope = (cfg.assumed_base_speedup - 1.0) / (cfg.baseline_procs - 1)
        return 1.0 + slope * (procs - 1)

    @property
    def last_report(self) -> Optional[PerformanceReport]:
        """Most recent report, if any."""
        return self.reports[-1] if self.reports else None

    def reset_baseline(self) -> None:
        """Discard the baseline and re-measure it.

        The paper's §3.1 notes that a variable working set "could
        result in incorrect speedup values [...]; however, if calls to
        SelfAnalyzer are automatically inserted by the compiler, this
        situation could be avoided by resetting data".  This is that
        reset: the next iterations re-establish ``t_base`` on the
        baseline processor count.
        """
        self._baseline.clear()
        self._t_base = None
        self._base_speedup = None
        self._measured = 0
        self._skip = 0
