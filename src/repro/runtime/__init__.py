"""Runtime libraries: NthLib and the NANOS SelfAnalyzer.

These are the application-side halves of the NANOS environment:

* :mod:`repro.runtime.selfanalyzer` measures per-iteration execution
  times, establishes a baseline with a small processor count, and
  produces the speedup/efficiency reports that drive the dynamic
  scheduling policies.
* :mod:`repro.runtime.nthlib` is the parallel runtime: it executes the
  application's phases on the simulator, reacts to allocation changes
  decided by the resource manager, and forwards SelfAnalyzer reports.
* :mod:`repro.runtime.periodicity` is the Dynamic Periodicity Detector
  used when applications are only available as binaries and the
  iterative structure must be discovered at runtime.
"""

from repro.runtime.periodicity import PeriodicityDetector
from repro.runtime.selfanalyzer import PerformanceReport, SelfAnalyzer, SelfAnalyzerConfig
from repro.runtime.selftuning import SelfTuner, SelfTuningConfig
from repro.runtime.nthlib import JobPhase, NthLibRuntime, RuntimeConfig

__all__ = [
    "PeriodicityDetector",
    "PerformanceReport",
    "SelfAnalyzer",
    "SelfAnalyzerConfig",
    "SelfTuner",
    "SelfTuningConfig",
    "JobPhase",
    "NthLibRuntime",
    "RuntimeConfig",
]
