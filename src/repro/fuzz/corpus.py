"""The replayable failure corpus.

Every counterexample the fuzzer shrinks is written as one JSON file
under ``tests/fuzz_corpus/``: the policy, the seed, the minimal op
list, and the violations it provoked.  Corpus files are deterministic
regressions — replaying one rebuilds a fresh target, interprets the
recorded ops with the same deterministic guards, and audits the oracle
after every op; a fixed bug stays fixed when its corpus file replays
clean.

Replay comes in two flavours:

* **pure** — ops against the live graph only;
* **via checkpoint** — a full save/audit/restore round trip is
  interleaved after every recorded op (the PR 5 machinery), proving
  the failure reproduces through the serialization boundary and that
  the two replays agree byte-for-byte on the final fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.oracle import LiveOracle, final_audit
from repro.fuzz.stimulus import Stimulus, apply_op
from repro.fuzz.targets import FuzzTarget
from repro.validate import Violation

#: default corpus directory, relative to the repository root
CORPUS_DIR = Path("tests") / "fuzz_corpus"


@dataclass
class CorpusEntry:
    """One corpus file: a stimulus plus the verdict it provoked."""

    stimulus: Stimulus
    violations: List[Dict[str, str]] = field(default_factory=list)
    crash: Optional[str] = None
    note: str = ""

    @property
    def codes(self) -> List[str]:
        """Violation codes, sorted and deduplicated."""
        codes = {v["code"] for v in self.violations}
        if self.crash is not None:
            codes.add("harness-crash")
        return sorted(codes)

    def to_dict(self) -> Dict[str, Any]:
        data = self.stimulus.to_dict()
        data["violations"] = list(self.violations)
        data["crash"] = self.crash
        data["note"] = self.note
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        return cls(
            stimulus=Stimulus.from_dict(data),
            violations=[dict(v) for v in data.get("violations", [])],
            crash=data.get("crash"),
            note=data.get("note", ""),
        )


def violation_dicts(violations: List[Violation]) -> List[Dict[str, str]]:
    """Violations as JSON-ready records (code, layer, message)."""
    return [
        {"code": v.code, "layer": v.layer, "message": str(v)}
        for v in violations
    ]


def corpus_filename(entry: CorpusEntry) -> str:
    """Deterministic filename: policy, leading code, stimulus digest."""
    codes = entry.codes
    lead = codes[0] if codes else "clean"
    digest = hashlib.sha256(
        entry.stimulus.to_json().encode("utf-8")
    ).hexdigest()[:12]
    return f"{entry.stimulus.policy.lower()}-{lead}-{digest}.json"


def write_corpus(entry: CorpusEntry, directory: Path = CORPUS_DIR) -> Path:
    """Write one corpus file; returns its path (stable per stimulus)."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_filename(entry)
    path.write_text(
        json.dumps(entry.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_corpus(path: Path) -> CorpusEntry:
    """Read one corpus file back."""
    return CorpusEntry.from_dict(json.loads(path.read_text(encoding="utf-8")))


def corpus_files(directory: Path = CORPUS_DIR) -> List[Path]:
    """All corpus files, sorted by name (deterministic test order)."""
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


@dataclass
class ReplayResult:
    """Outcome of replaying one stimulus against a fresh target."""

    violations: List[Violation]
    crash: Optional[str]
    ops_applied: int
    fingerprint: Tuple[Any, ...]

    @property
    def clean(self) -> bool:
        """Whether the whole stimulus replayed with a silent oracle."""
        return not self.violations and self.crash is None


def replay_stimulus(
    stimulus: Stimulus, via_checkpoint: bool = False
) -> ReplayResult:
    """Replay *stimulus* from scratch, auditing after every op.

    Stops at the first violation (matching the fuzzer, which raises on
    the op that broke the invariant).  With *via_checkpoint*, a full
    checkpoint round trip runs after every recorded op, so the replay
    crosses the serialization boundary at every step.
    """
    with FuzzTarget(
        stimulus.policy, seed=stimulus.seed, stream=stimulus.stream
    ) as target:
        oracle = LiveOracle()
        applied = 0
        for op in stimulus.ops:
            try:
                violations = apply_op(target, op)
                violations.extend(oracle.check(target))
                if not violations and via_checkpoint and op.get("kind") != "checkpoint":
                    violations.extend(target.checkpoint_roundtrip())
            except Exception as exc:
                return ReplayResult(
                    violations=[],
                    crash=f"{type(exc).__name__}: {exc}",
                    ops_applied=applied,
                    fingerprint=target.fingerprint(),
                )
            applied += 1
            if violations:
                return ReplayResult(
                    violations=violations,
                    crash=None,
                    ops_applied=applied,
                    fingerprint=target.fingerprint(),
                )
        # The fingerprint is taken before the final audit: finish()
        # flushes in-progress bursts, which is harvesting, not history.
        fingerprint = target.fingerprint()
        try:
            violations = final_audit(target)
        except Exception as exc:
            return ReplayResult(
                violations=[],
                crash=f"{type(exc).__name__}: {exc}",
                ops_applied=applied,
                fingerprint=fingerprint,
            )
        return ReplayResult(
            violations=violations,
            crash=None,
            ops_applied=applied,
            fingerprint=fingerprint,
        )


def replay_corpus(path: Path, via_checkpoint: bool = False) -> ReplayResult:
    """Replay one corpus file (see :func:`replay_stimulus`)."""
    return replay_stimulus(load_corpus(path).stimulus, via_checkpoint=via_checkpoint)
