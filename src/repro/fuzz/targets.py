"""Live Simulator+RM+QS sessions wrapped as fuzzable targets.

A :class:`FuzzTarget` is one policy's full coordination stack — the
DES engine, the resource manager (or cluster coordinator), the queuing
system, and the trace recorder — assembled exactly as the experiment
runner assembles it, but driven op-by-op instead of to completion.
The stimulus layer (:mod:`repro.fuzz.stimulus`) mutates it; the oracle
(:mod:`repro.fuzz.oracle`) audits it between any two events.

The target also owns the checkpoint round-trip: save the session at
the current cut point, audit the snapshot with ``validate_checkpoint``,
restore it, prove the restored graph is at the same point in history
(fingerprint equality) and is a serialization fixed point (a second
and third save are byte-identical), then **continue the fuzz run on
the restored graph** — every op after a checkpoint op exercises the
restored object graph, not the original.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.application import AppClass, ApplicationSpec
from repro.apps.speedup import AmdahlSpeedup, TabulatedSpeedup
from repro.checkpoint import SimulationSession, read_snapshot
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.topology import ClusterSpec
from repro.experiments.common import ExperimentConfig, build_session
from repro.metrics.trace import FaultRecord, ReallocationRecord, TraceRecorder
from repro.qs.job import Job, JobState
from repro.qs.queuing import NanosQS, RetryConfig
from repro.qs.streaming import BLOCKED, IngressConfig
from repro.qs.workload import TABLE1_MIXES
from repro.serve.session import ServeConfig, build_serve_session
from repro.serve.source import SyntheticSource
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.validate import Violation, validate_checkpoint, validate_stream

#: machine size of every fuzz target (cluster: 4 nodes x 4 CPUs)
FUZZ_N_CPUS = 16

#: policies the fuzzer drives; "Cluster" is the multi-SMP coordinator
#: (IRIX is time-shared — no partitions, no fault surface — so the
#: space-sharing invariants do not apply to it)
FUZZ_POLICIES: Tuple[str, ...] = ("Equip", "Equal_eff", "PDPA", "Cluster")

#: policies the *streaming* fuzzer drives (the serve stack wraps the
#: space-sharing RMs; the cluster coordinator has no streaming twin)
FUZZ_STREAM_POLICIES: Tuple[str, ...] = ("Equip", "Equal_eff", "PDPA")

#: ingress bound of streaming targets — small enough that a handful of
#: submissions reaches the shed path
FUZZ_INGRESS_QUEUE = 3

#: retry budget small enough that the fuzzer reaches FAILED routinely
FUZZ_RETRY = RetryConfig(max_retries=1, backoff_base=1.0, backoff_cap=4.0)

#: event budget for drains — far above any stimulus the fuzzer emits
_DRAIN_MAX_EVENTS = 200_000


def _fuzz_apps() -> Dict[str, ApplicationSpec]:
    """Small, fast applications exercising every scalability shape."""
    linear = ApplicationSpec(
        name="fz-linear",
        app_class=AppClass.SUPERLINEAR,
        speedup_model=AmdahlSpeedup(0.0, name="fz-linear"),
        iterations=4,
        t_iter_seq=2.0,
        t_startup=0.1,
        t_teardown=0.1,
        default_request=8,
    )
    amdahl = ApplicationSpec(
        name="fz-amdahl",
        app_class=AppClass.MEDIUM,
        speedup_model=AmdahlSpeedup(0.2, name="fz-amdahl"),
        iterations=3,
        t_iter_seq=1.5,
        t_startup=0.1,
        t_teardown=0.1,
        default_request=6,
    )
    flat = ApplicationSpec(
        name="fz-flat",
        app_class=AppClass.NONE,
        speedup_model=TabulatedSpeedup(
            [(1, 1.0), (2, 1.3), (4, 1.5), (8, 1.55)], name="fz-flat"
        ),
        iterations=3,
        t_iter_seq=1.5,
        t_startup=0.1,
        t_teardown=0.1,
        default_request=4,
    )
    rigid = ApplicationSpec(
        name="fz-rigid",
        app_class=AppClass.HIGH,
        speedup_model=AmdahlSpeedup(0.05, name="fz-rigid"),
        iterations=3,
        t_iter_seq=1.5,
        t_startup=0.1,
        t_teardown=0.1,
        default_request=4,
        malleable=False,
    )
    return {spec.name: spec for spec in (linear, amdahl, flat, rigid)}


FUZZ_APPS: Dict[str, ApplicationSpec] = _fuzz_apps()


def fuzz_config(seed: int) -> ExperimentConfig:
    """The experiment config every fuzz target runs under."""
    return ExperimentConfig(n_cpus=FUZZ_N_CPUS, seed=seed, duration=60.0)


class FuzzTarget:
    """One policy's coordination stack, driven op-by-op.

    Parameters
    ----------
    policy:
        One of :data:`FUZZ_POLICIES` (streaming:
        :data:`FUZZ_STREAM_POLICIES`).
    seed:
        Master seed for the session's RNG streams.
    stream:
        ``True`` builds the open-system serve stack instead of the
        batch session: a :class:`~repro.qs.streaming.StreamingQS` with
        a small bounded ingress queue (shed policy picked
        deterministically from the seed) behind an exhausted arrival
        pump, so every fuzz submission goes through admission control
        and the bounded-memory fold/prune path.
    """

    def __init__(self, policy: str, seed: int = 0, stream: bool = False) -> None:
        if stream:
            if policy not in FUZZ_STREAM_POLICIES:
                raise ValueError(
                    f"unknown stream fuzz policy {policy!r}; expected one "
                    f"of {FUZZ_STREAM_POLICIES}"
                )
        elif policy not in FUZZ_POLICIES:
            raise ValueError(
                f"unknown fuzz policy {policy!r}; expected one of {FUZZ_POLICIES}"
            )
        self.policy = policy
        self.seed = seed
        self.stream = stream
        self.n_cpus = FUZZ_N_CPUS
        self._next_job_id = 1 if stream else 0
        self._snapdir: Optional[str] = None
        config = fuzz_config(seed)
        if stream:
            self.session = _build_stream_session(policy, config)
        elif policy == "Cluster":
            self.session = _build_cluster_session(config)
        else:
            self.session = build_session(policy, [], config, load=0.0)
        # A small retry budget so the FAILED path is reachable; the
        # experiment assembly only wires retry when a fault plan is
        # configured, and the fuzzer injects faults directly.
        self.session.qs.retry = FUZZ_RETRY

    # ------------------------------------------------------------------
    # component access (valid across checkpoint swaps)
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The session's simulator (rebinds after a checkpoint swap)."""
        return self.session.sim

    @property
    def rm(self) -> Any:
        """The resource manager or cluster coordinator."""
        return self.session.rm

    @property
    def qs(self) -> NanosQS:
        """The queuing system."""
        return self.session.qs

    @property
    def is_cluster(self) -> bool:
        """Whether this target drives the cluster coordinator."""
        return self.policy == "Cluster"

    @property
    def is_stream(self) -> bool:
        """Whether this target drives the open-system serve stack."""
        return self.stream

    def machines(self) -> List[Any]:
        """Every machine model of the target (one, or one per node)."""
        if self.is_cluster:
            return list(self.rm.machines)
        return [self.rm.machine]

    def traces(self) -> List[Optional[TraceRecorder]]:
        """Trace recorders aligned with :meth:`machines`."""
        if self.is_cluster:
            return list(self.rm.traces)
        return [self.session.trace]

    def reallocations(self) -> List[ReallocationRecord]:
        """Every reallocation record so far, in recording order."""
        if self.is_cluster:
            return list(self.rm.reallocations)
        return list(self.session.trace.reallocations)

    def kill_faults(self) -> List[FaultRecord]:
        """``job_kill`` fault records so far (empty on cluster)."""
        if self.is_cluster:
            return []
        return self.session.trace.faults_of_kind("job_kill")

    def allocation_of(self, job_id: int) -> int:
        """Processors *job_id* currently holds (cluster: co-scheduled)."""
        if self.is_cluster:
            state = self.rm.states.get(job_id)
            return state.total_cpus if state is not None else 0
        return self.rm.machine.allocation_of(job_id)

    def fixed_mpl(self) -> Optional[int]:
        """The policy's fixed multiprogramming level, if it has one."""
        policy = getattr(self.rm, "policy", None)
        return getattr(policy, "fixed_mpl", None)

    def running_jobs(self) -> List[Job]:
        """Jobs currently executing, ordered by id."""
        return [self.rm.jobs[job_id] for job_id in sorted(self.rm.jobs)]

    # ------------------------------------------------------------------
    # stimulus surface
    # ------------------------------------------------------------------
    def submit(self, app: str, request: int) -> Job:
        """Submit one job of application *app* at the current time.

        Streaming targets go through :meth:`StreamingQS.offer`, so a
        submission over a full ingress queue is shed (or evicts the
        queue head) exactly as the service would shed it.
        """
        spec = FUZZ_APPS[app]
        request = max(1, min(request, self.n_cpus))
        job = Job(
            job_id=self._next_job_id,
            spec=spec,
            submit_time=self.sim.now,
            request=request,
        )
        self._next_job_id += 1
        if self.is_stream:
            # offer() owns the accounting (admitted jobs land in
            # qs.jobs, which IS session.jobs for a serve session);
            # reject/drop-oldest never return BLOCKED.
            outcome = self.qs.offer(job)
            assert outcome != BLOCKED
            return job
        # The session and the QS each keep their own job list (sharing
        # the Job objects); both must see dynamic submissions or the
        # accounting invariants compare different universes.
        self.qs.submit(job)
        self.session.jobs.append(job)
        return job

    def prune(self) -> int:
        """Reclaim terminal jobs (streaming only; no-op elsewhere).

        The deterministic guard for the ``prune`` op: batch sessions
        keep every job for the final summary, so pruning them would
        change the universe the post-hoc validators audit.
        """
        if not self.is_stream:
            return 0
        return self.session.prune()

    def step_events(self, n: int) -> int:
        """Fire up to *n* pending events; returns the number fired."""
        return self.sim.step(n)

    def advance_time(self, dt: float) -> None:
        """Run the simulation *dt* simulated seconds forward."""
        self.sim.run(until=self.sim.now + dt, max_events=_DRAIN_MAX_EVENTS)

    def drain(self) -> None:
        """Fire events until the queue empties or every job is terminal."""
        while self.sim.pending_events > 0 and not self.qs.all_done:
            if self.sim.step(10_000) == 0:
                break

    # ------------------------------------------------------------------
    # checkpoint round-trip (the PR 5 machinery, mid-fuzz)
    # ------------------------------------------------------------------
    def checkpoint_roundtrip(self) -> List[Violation]:
        """Save, audit, restore, verify, and continue on the restored graph.

        The oracle contract for checkpoints at an arbitrary cut point:

        * the snapshot passes ``validate_checkpoint`` (envelope
          integrity, code/config gates, meta-vs-graph agreement);
        * the restored session is at the same point in history — same
          clock, same fired-event count, same job states, same
          partitions, same live events (fingerprint equality);
        * restore→save is a serialization **fixed point**: saving the
          restored session twice yields byte-identical payloads and
          identical metas (the first save may differ from the original
          byte stream only through pickle memoization, never in meaning).

        On success the target swaps to the restored session, so every
        subsequent op replays against state that went through disk.
        """
        problems: List[Violation] = []
        snapdir = self._ensure_snapdir()
        first = snapdir / "roundtrip-1.ckpt"
        second = snapdir / "roundtrip-2.ckpt"
        third = snapdir / "roundtrip-3.ckpt"
        # Serve sessions prune inside save(); prune *before* taking the
        # reference fingerprint so both sides describe the pruned graph.
        if self.is_stream:
            self.session.prune()
        fp_before = self.fingerprint()
        session_cls = type(self.session)
        self.session.save(first)
        problems.extend(validate_checkpoint(
            first, expected_config=self.session.config, session_cls=session_cls
        ))
        if problems:
            return problems
        restored = session_cls.restore(
            first, expected_config=self.session.config
        )
        fp_restored = _session_fingerprint(restored)
        if fp_restored != fp_before:
            problems.append(Violation(
                "ckpt-roundtrip", "checkpoint",
                f"restored session is at a different point in history: "
                f"{_fingerprint_diff(fp_before, fp_restored)}",
            ))
            return problems
        if self.is_stream:
            problems.extend(self._stream_roundtrip_checks(restored))
            if problems:
                return problems
        restored.save(second)
        again = session_cls.restore(second, expected_config=self.session.config)
        again.save(third)
        meta2, payload2 = read_snapshot(second)
        meta3, payload3 = read_snapshot(third)
        if payload2 != payload3:
            problems.append(Violation(
                "ckpt-roundtrip", "checkpoint",
                f"restore→save is not a fixed point: second and third "
                f"round-trip payloads differ ({len(payload2)} vs "
                f"{len(payload3)} bytes)",
            ))
        meta1, _ = read_snapshot(first)
        for key in ("sim_time", "events_fired", "pending_events",
                    "config_digest", "policy", "seed"):
            values = {meta1.get(key), meta2.get(key), meta3.get(key)}
            if len(values) != 1:
                problems.append(Violation(
                    "ckpt-roundtrip", "checkpoint",
                    f"meta field {key!r} drifts across round trips: "
                    f"{meta1.get(key)} / {meta2.get(key)} / {meta3.get(key)}",
                ))
        if _session_fingerprint(again) != fp_before:
            problems.append(Violation(
                "ckpt-roundtrip", "checkpoint",
                "second restore is at a different point in history than "
                "the session that was saved",
            ))
        if problems:
            return problems
        # Continue the run on the graph that went through disk.
        self.session = again
        return problems

    def _stream_roundtrip_checks(self, restored: Any) -> List[Violation]:
        """Serve-specific round-trip contract: aggregates and invariants.

        The restored stream must report byte-identical bounded-memory
        aggregates (the ``StreamingStats`` digest) and must itself pass
        every streaming invariant — a snapshot that resurrects an
        invalid stream is as broken as one that loses a job.
        """
        problems: List[Violation] = []
        before = self.session.stats.digest()
        after = restored.stats.digest()
        if before != after:
            problems.append(Violation(
                "ckpt-roundtrip", "checkpoint",
                f"restored streaming aggregates diverge: stats digest "
                f"{before} -> {after}",
            ))
        problems.extend(validate_stream(restored))
        return problems

    def _ensure_snapdir(self) -> Path:
        if self._snapdir is None:
            self._snapdir = tempfile.mkdtemp(prefix="repro-fuzz-")
        return Path(self._snapdir)

    def close(self) -> None:
        """Delete scratch snapshot files."""
        if self._snapdir is not None:
            shutil.rmtree(self._snapdir, ignore_errors=True)
            self._snapdir = None

    def __enter__(self) -> "FuzzTarget":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> Tuple[Any, ...]:
        """Deterministic digest of the observable simulation state.

        Two sessions with equal fingerprints are at the same point in
        history: same clock, same event counts, same live events, same
        job lifecycle timestamps, same partitions.  Used to prove
        checkpoint round-trips and replay determinism.
        """
        return _session_fingerprint(self.session)


def _session_fingerprint(session: SimulationSession) -> Tuple[Any, ...]:
    jobs = tuple(
        (job.job_id, job.state.value, job.submit_time, job.start_time,
         job.end_time, job.attempts)
        for job in session.qs.jobs
    )
    rm = session.rm
    if hasattr(rm, "machines"):  # cluster coordinator
        allocations = tuple(
            tuple(sorted(machine.allocations().items()))
            for machine in rm.machines
        )
    else:
        allocations = (tuple(sorted(rm.machine.allocations().items())),)
    # Streaming sessions fold terminal jobs into bounded aggregates and
    # prune the objects — the digest is the part of history the job
    # tuple no longer carries.
    stats = getattr(session, "stats", None)
    stats_digest = stats.digest() if stats is not None else None
    return (
        jobs,
        session.sim.now,
        session.sim.events_fired,
        session.sim.pending_events,
        tuple(session.sim.live_labels()),
        allocations,
        stats_digest,
    )


def _fingerprint_diff(before: Tuple[Any, ...], after: Tuple[Any, ...]) -> str:
    names = ("jobs", "now", "events_fired", "pending_events", "live_labels",
             "allocations", "stats_digest")
    parts = [
        f"{name}: {b!r} -> {a!r}"
        for name, b, a in zip(names, before, after)
        if b != a
    ]
    return "; ".join(parts) if parts else "(no observable difference)"


def _build_stream_session(policy: str, config: ExperimentConfig) -> Any:
    """Assemble the serve stack as a fuzz target.

    The source is a real :class:`SyntheticSource` capped at
    ``max_jobs=0``: priming the pump exhausts it immediately, so every
    arrival comes from fuzz ``submit`` ops through ``offer()`` — the
    fuzzer controls the interleaving, not a Poisson clock — while the
    pump/queue/stats wiring stays exactly the service's.  The shed
    policy alternates with the seed so both deterministic shedding
    modes are fuzzed (``block`` needs a cooperating pump and is
    exercised by the serve unit tests instead).
    """
    ingress = IngressConfig(
        max_queue=FUZZ_INGRESS_QUEUE,
        policy=("reject", "drop-oldest")[config.seed % 2],
    )
    source = SyntheticSource(
        TABLE1_MIXES["w2"],
        load=1.0,
        n_cpus=config.n_cpus,
        seed=config.seed,
        max_jobs=0,
    )
    session = build_serve_session(
        policy,
        source,
        config=config,
        serve_config=ServeConfig(ingress=ingress),
    )
    session.pump.prime()  # draws nothing (max_jobs=0) and exhausts
    return session


def _build_cluster_session(config: ExperimentConfig) -> SimulationSession:
    """Assemble the cluster coordinator exactly as an experiment would.

    4 nodes x 4 CPUs = the same 16 processors as the space-sharing
    targets, so differential conservation properties compare like with
    like.
    """
    cluster = ClusterSpec(n_nodes=4, cpus_per_node=FUZZ_N_CPUS // 4)
    sim = Simulator()
    streams = RandomStreams(config.seed)
    coordinator = ClusterCoordinator(
        sim, cluster, streams,
        params=config.pdpa,
        runtime_config=config.runtime_config(),
    )
    qs = NanosQS(sim, coordinator, [], trace=None)
    return SimulationSession(
        "Cluster", 0.0, config, sim, coordinator, qs, trace=None, jobs=[],
    )
