"""The fuzzer's op vocabulary and its deterministic interpreter.

A stimulus is a list of small JSON-serialisable ops — job arrival,
event progress, time progress, CPU fault/repair, job crash, forced
allocation, checkpoint round-trip, drain.  :func:`apply_op` interprets
one op against a :class:`~repro.fuzz.targets.FuzzTarget` with
**deterministic guards**: an op that is inapplicable in the current
state (failing the last CPU, crashing when nothing runs) is skipped by
a rule that depends only on the op and the observable state, never on
chance.  Determinism of the guards is what makes a recorded stimulus
replayable: the same op list against a fresh target takes exactly the
same actions.

Ops
---
``submit {app, request}``
    One job of a :data:`~repro.fuzz.targets.FUZZ_APPS` application.
``step {n}``
    Fire up to *n* pending events.
``advance {dt}``
    Run *dt* simulated seconds forward.
``cpu_fail {cpu, transient}`` / ``cpu_repair {cpu}``
    Take a CPU offline through the RM's fault hook / bring it back.
    Skipped on the cluster coordinator (no fault surface yet) and when
    the machine would lose its last allocatable CPU.
``crash {victim}``
    Kill the *victim*-th running job (modulo the running count), as an
    application crash would.  Skipped when nothing runs or on cluster.
``force {victim, procs}``
    Impose an allocation outside the policy (graceful-degradation
    path), clamped to ``[1, request]``.  Same skip rules as ``crash``.
``checkpoint {}``
    Save/audit/restore/continue (see
    :meth:`~repro.fuzz.targets.FuzzTarget.checkpoint_roundtrip`).
``drain {}``
    Fire events until the queue empties or all jobs are terminal.
``prune {}``
    Reclaim terminal jobs (streaming targets only; a deterministic
    no-op on batch targets, which keep every job for the summary).

A stimulus recorded against a streaming target carries
``stream: true``, so replays rebuild the serve stack (bounded ingress,
fold-on-completion stats) rather than the batch session.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.fuzz.targets import FUZZ_APPS, FUZZ_N_CPUS, FuzzTarget
from repro.validate import Violation

#: op kinds in canonical order (stable for corpus files and reports)
OP_KINDS: Tuple[str, ...] = (
    "submit", "step", "advance", "cpu_fail", "cpu_repair", "crash",
    "force", "checkpoint", "drain", "prune",
)

#: current corpus/stimulus format version
STIMULUS_VERSION = 1


@dataclass
class Stimulus:
    """A replayable recorded interleaving for one policy."""

    policy: str
    seed: int
    ops: List[Dict[str, Any]] = field(default_factory=list)
    n_cpus: int = FUZZ_N_CPUS
    #: recorded against the streaming (serve-stack) target
    stream: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable key order is the writer's job)."""
        return {
            "version": STIMULUS_VERSION,
            "policy": self.policy,
            "seed": self.seed,
            "n_cpus": self.n_cpus,
            "stream": self.stream,
            "ops": list(self.ops),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Stimulus":
        version = data.get("version")
        if version != STIMULUS_VERSION:
            raise ValueError(
                f"unsupported stimulus version {version!r} "
                f"(this code reads version {STIMULUS_VERSION})"
            )
        return cls(
            policy=data["policy"],
            seed=int(data["seed"]),
            ops=[dict(op) for op in data["ops"]],
            n_cpus=int(data.get("n_cpus", FUZZ_N_CPUS)),
            # absent in pre-streaming corpus files: those were batch
            stream=bool(data.get("stream", False)),
        )

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, stable floats)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Stimulus":
        return cls.from_dict(json.loads(text))


def _bad_op(op: Dict[str, Any], why: str) -> ValueError:
    return ValueError(f"malformed op {op!r}: {why}")


def apply_op(target: FuzzTarget, op: Dict[str, Any]) -> List[Violation]:
    """Interpret one op against *target*; returns immediate violations.

    Most ops return ``[]`` — the oracle audits the state afterwards —
    but the checkpoint op's round-trip failures are violations in
    their own right and are returned here.
    """
    kind = op.get("kind")
    if kind == "submit":
        app = op.get("app")
        if app not in FUZZ_APPS:
            raise _bad_op(op, f"unknown app {app!r}")
        target.submit(app, int(op.get("request", 1)))
        return []
    if kind == "step":
        n = int(op.get("n", 1))
        if n < 0:
            raise _bad_op(op, "n must be >= 0")
        target.step_events(n)
        return []
    if kind == "advance":
        dt = float(op.get("dt", 1.0))
        if dt <= 0:
            raise _bad_op(op, "dt must be positive")
        target.advance_time(dt)
        return []
    if kind == "cpu_fail":
        if target.is_cluster:
            return []  # the coordinator has no fault surface yet
        cpu = int(op.get("cpu", 0)) % target.n_cpus
        machine = target.rm.machine
        if machine.healthy_cpus <= 1:
            return []  # failing the last CPU is refused by the machine
        target.rm.on_cpu_failed(cpu, permanent=not bool(op.get("transient")))
        return []
    if kind == "cpu_repair":
        if target.is_cluster:
            return []
        cpu = int(op.get("cpu", 0)) % target.n_cpus
        target.rm.on_cpu_repaired(cpu)
        return []
    if kind == "crash":
        if target.is_cluster:
            return []  # kill_job is a space-sharing RM surface
        running = target.running_jobs()
        if not running:
            return []
        victim = running[int(op.get("victim", 0)) % len(running)]
        target.rm.kill_job(victim, reason="fuzz: injected crash")
        return []
    if kind == "force":
        if target.is_cluster:
            return []
        running = target.running_jobs()
        if not running:
            return []
        victim = running[int(op.get("victim", 0)) % len(running)]
        assert victim.request is not None
        # force_allocation clamps growth to the free pool but not to
        # the request; the real injector's fallback never asks for
        # more than the job requested, so neither does the fuzzer.
        procs = max(1, min(int(op.get("procs", 1)), victim.request))
        target.rm.force_allocation(
            victim.job_id, procs, reason="fuzz: forced allocation"
        )
        return []
    if kind == "checkpoint":
        return target.checkpoint_roundtrip()
    if kind == "drain":
        target.drain()
        return []
    if kind == "prune":
        target.prune()  # deterministic no-op on batch targets
        return []
    raise _bad_op(op, f"unknown kind {kind!r}; expected one of {OP_KINDS}")
