"""Incremental invariant oracle, callable on live simulation state.

:mod:`repro.validate` audits *completed* runs from their output shape
(records, bursts, fault logs).  This module states the same invariants
against the **live** object graph — machine books, RM tables, QS
queues, the event heap — so the protocol fuzzer can assert them
between any two events.  Each oracle check is incremental: cursors
remember how much of the trace was already audited, so a call costs
O(new records + live state), not O(history).

Parity with the post-hoc validators is a contract: every violation
code reachable through ``validate_run`` / ``validate_sweep`` /
``validate_checkpoint`` maps to an oracle check in
:data:`ORACLE_PARITY`, and a completeness test fails the build if the
two drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.machine.machine import MachineError
from repro.qs.job import JobState
from repro.validate import Violation, validate_race

if TYPE_CHECKING:
    from repro.fuzz.targets import FuzzTarget

#: tolerance for floating-point time comparisons (same as validate)
_EPS = 1e-6

#: Every check the live oracle implements.  ``LiveOracle.check`` runs
#: the per-rule checks in this order; ``ckpt-roundtrip`` is driven by
#: the checkpoint stimulus (it mutates state), and the sweep/race
#: checks are module functions usable mid-sweep.
ORACLE_CHECKS: Tuple[str, ...] = (
    "cpu-books",
    "cpu-conservation",
    "fault-offline",
    "alloc-bounds",
    "mpl-bound",
    "job-conservation",
    "job-retry",
    "realloc-chain",
    "burst-sanity",
    "policy-sync",
    "cluster-coscheduling",
    "no-wedge",
    "stream-invariants",
    "ckpt-roundtrip",
    "sweep-accounting",
    "sweep-journal",
    "race",
)

#: Post-hoc validator code -> live oracle check covering it.  The
#: completeness test asserts every code in
#: ``validate.RUN_CHECK_CODES`` / ``SWEEP_CHECK_CODES`` /
#: ``CHECKPOINT_CHECK_CODES`` appears here, and that every value names
#: a real oracle check.
ORACLE_PARITY: Dict[str, str] = {
    # validate_run
    "job-accounting": "job-conservation",
    "burst-sanity": "burst-sanity",
    "capacity": "cpu-conservation",
    "trace-consistency": "burst-sanity",
    "realloc-chain": "realloc-chain",
    "fault-offline-overlap": "fault-offline",
    "fault-capacity": "cpu-conservation",
    "fault-requeue-terminal": "job-conservation",
    "race-ambiguous": "race",
    # validate_sweep
    "sweep-lost-cell": "sweep-accounting",
    "sweep-stats-balance": "sweep-accounting",
    "sweep-journal": "sweep-journal",
    # validate_checkpoint
    "ckpt-envelope": "ckpt-roundtrip",
    "ckpt-restore": "ckpt-roundtrip",
    "ckpt-meta": "ckpt-roundtrip",
    "ckpt-compaction": "ckpt-roundtrip",
    "ckpt-wedged": "no-wedge",
    # validate_stream (streaming targets run the full post-hoc stream
    # audit between every two events; the recovery invariant is also
    # re-proven by every serve checkpoint round-trip)
    "stream-conservation": "stream-invariants",
    "stream-bounded-queue": "stream-invariants",
    "stream-recovery": "stream-invariants",
}


class LiveOracle:
    """Audits a live :class:`~repro.fuzz.targets.FuzzTarget` mid-run.

    Stateful: cursors track the already-audited prefix of the trace
    (bursts, reallocations, kills) and the terminal states already
    observed, so terminal transitions are checked for monotonicity.
    Checkpoint swaps are transparent — the restored graph is at the
    same point in history, so every cursor stays valid.
    """

    def __init__(self) -> None:
        #: per-trace-index count of bursts already audited
        self._burst_idx: Dict[int, int] = {}
        #: per-(trace index, cpu) end time of the last audited burst
        self._burst_end: Dict[Tuple[int, int], float] = {}
        #: reallocation records already audited
        self._realloc_idx = 0
        #: job_kill fault records already ingested from the trace
        self._kill_idx = 0
        #: per-job kill times not yet matched to a chain restart
        self._pending_kills: Dict[int, List[float]] = {}
        #: per-job expected ``old_procs`` of the next reallocation
        self._expected: Dict[int, int] = {}
        #: job_id -> (state value, end_time) once terminal
        self._terminal: Dict[int, Tuple[str, Optional[float]]] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def check(self, target: "FuzzTarget") -> List[Violation]:
        """Run every per-rule check; returns violations (empty = ok)."""
        problems: List[Violation] = []
        problems.extend(self.check_cpu_books(target))
        problems.extend(self.check_cpu_conservation(target))
        problems.extend(self.check_fault_offline(target))
        problems.extend(self.check_alloc_bounds(target))
        problems.extend(self.check_mpl_bound(target))
        problems.extend(self.check_job_conservation(target))
        problems.extend(self.check_job_retry(target))
        problems.extend(self.check_realloc_chain(target))
        problems.extend(self.check_burst_sanity(target))
        problems.extend(self.check_policy_sync(target))
        problems.extend(self.check_cluster_coscheduling(target))
        problems.extend(self.check_no_wedge(target))
        problems.extend(self.check_stream_invariants(target))
        return problems

    # ------------------------------------------------------------------
    # CPU conservation (validate: capacity, fault-capacity)
    # ------------------------------------------------------------------
    def check_cpu_books(self, target: "FuzzTarget") -> List[Violation]:
        """Each machine's incremental books match its CPU ground truth."""
        problems = []
        for index, machine in enumerate(target.machines()):
            try:
                machine.check_invariants()
            except MachineError as exc:
                problems.append(Violation(
                    "cpu-books", "alloc", f"machine {index}: {exc}"
                ))
        return problems

    def check_cpu_conservation(self, target: "FuzzTarget") -> List[Violation]:
        """No lost or phantom CPUs: free + allocated == healthy.

        Every allocatable CPU is either idle (free pool) or owned by
        exactly one partition; offline CPUs are neither.  The live
        counterpart of the post-hoc ``capacity`` and ``fault-capacity``
        sweeps: concurrent bursts can only exceed (healthy) capacity if
        this identity broke first.
        """
        problems = []
        for index, machine in enumerate(target.machines()):
            free = machine.free_cpus
            allocated = machine.allocated_cpus
            healthy = machine.healthy_cpus
            if free + allocated != healthy:
                problems.append(Violation(
                    "cpu-conservation", "alloc",
                    f"machine {index}: free {free} + allocated {allocated} "
                    f"!= healthy {healthy} (of {machine.n_cpus}) — "
                    f"lost or phantom CPUs",
                ))
            total = sum(machine.allocations().values())
            if total != allocated:
                problems.append(Violation(
                    "cpu-conservation", "alloc",
                    f"machine {index}: partitions hold {total} CPUs but "
                    f"allocated count says {allocated}",
                ))
        return problems

    def check_fault_offline(self, target: "FuzzTarget") -> List[Violation]:
        """No OFFLINE CPU may be owned (live form of offline-overlap)."""
        problems = []
        for index, machine in enumerate(target.machines()):
            for cpu in machine.cpus:
                if not cpu.allocatable and cpu.owner is not None:
                    problems.append(Violation(
                        "fault-offline", "fault",
                        f"machine {index}: offline CPU {cpu.cpu_id} still "
                        f"owned by job {cpu.owner}",
                    ))
        return problems

    # ------------------------------------------------------------------
    # allocation bounds and MPL (validate: realloc-chain bounds)
    # ------------------------------------------------------------------
    def check_alloc_bounds(self, target: "FuzzTarget") -> List[Violation]:
        """Every running job holds between 1 and ``request`` CPUs."""
        problems = []
        for job in target.running_jobs():
            alloc = target.allocation_of(job.job_id)
            if alloc < 1:
                problems.append(Violation(
                    "alloc-bounds", "alloc",
                    f"job {job.job_id}: running with allocation {alloc} < 1",
                ))
            assert job.request is not None
            if alloc > job.request:
                problems.append(Violation(
                    "alloc-bounds", "alloc",
                    f"job {job.job_id}: allocation {alloc} exceeds its "
                    f"request {job.request}",
                ))
        return problems

    def check_mpl_bound(self, target: "FuzzTarget") -> List[Violation]:
        """Fixed-MPL policies never run more jobs than their level."""
        fixed = target.fixed_mpl()
        if fixed is None:
            return []
        running = target.rm.running_count
        if running > fixed:
            return [Violation(
                "mpl-bound", "alloc",
                f"{running} jobs running under a fixed multiprogramming "
                f"level of {fixed}",
            )]
        return []

    # ------------------------------------------------------------------
    # job conservation (validate: job-accounting, fault-requeue-terminal)
    # ------------------------------------------------------------------
    def check_job_conservation(self, target: "FuzzTarget") -> List[Violation]:
        """Every job sits in exactly the bucket its state names.

        QUEUED jobs are in the FCFS queue or have a pending
        submit/requeue event (anything else is a lost job); RUNNING
        jobs are in the RM's table with a runtime; DONE/FAILED jobs are
        in the QS's terminal lists.  Timestamps must be causally
        ordered and never in the simulated future.
        """
        problems = []
        qs = target.qs
        now = target.sim.now
        labels = target.sim.live_labels()
        pending_submit = set()
        pending_requeue = set()
        for label in labels:
            if label.startswith("submit:"):
                pending_submit.add(int(label.split(":", 1)[1]))
            elif label.startswith("requeue:"):
                pending_requeue.add(int(label.split(":", 1)[1]))
        queued_ids = [job.job_id for job in qs.queue]
        running_ids = set(target.rm.jobs)
        completed_ids = [job.job_id for job in qs.completed]
        failed_ids = [job.job_id for job in qs.failed]
        for name, bucket in (
            ("queue", queued_ids),
            ("completed", completed_ids),
            ("failed", failed_ids),
        ):
            if len(set(bucket)) != len(bucket):
                problems.append(Violation(
                    "job-conservation", "job",
                    f"duplicate job ids in the {name} list: {bucket}",
                ))
        queued_set = set(queued_ids)
        completed_set = set(completed_ids)
        failed_set = set(failed_ids)
        for job in qs.jobs:
            jid = job.job_id
            places = []
            if jid in queued_set:
                places.append("queue")
            if jid in running_ids:
                places.append("running")
            if jid in completed_set:
                places.append("completed")
            if jid in failed_set:
                places.append("failed")
            if jid in pending_submit:
                places.append("pending-submit")
            if jid in pending_requeue:
                places.append("pending-requeue")
            if len(places) > 1:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: duplicated across {places}",
                ))
            state = job.state
            if state is JobState.QUEUED and not places:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: QUEUED but lost — not in the queue and "
                    f"no pending submit/requeue event",
                ))
            elif state is JobState.RUNNING and places != ["running"]:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: RUNNING but found in {places or 'nowhere'}",
                ))
            elif state is JobState.DONE and places != ["completed"]:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: DONE but found in {places or 'nowhere'}",
                ))
            elif state is JobState.FAILED and places != ["failed"]:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: FAILED but found in {places or 'nowhere'}",
                ))
            # Timestamps: causal order, never in the simulated future.
            if job.start_time is not None:
                if job.start_time < job.submit_time - _EPS:
                    problems.append(Violation(
                        "job-conservation", "job",
                        f"job {jid}: started at {job.start_time} before "
                        f"its submission at {job.submit_time}",
                    ))
                if job.start_time > now + _EPS:
                    problems.append(Violation(
                        "job-conservation", "job",
                        f"job {jid}: start time {job.start_time} lies in "
                        f"the future (now {now})",
                    ))
            if job.end_time is not None and job.end_time > now + _EPS:
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: end time {job.end_time} lies in the "
                    f"future (now {now})",
                ))
            if (state in (JobState.DONE, JobState.FAILED)
                    and job.end_time is None):
                problems.append(Violation(
                    "job-conservation", "job",
                    f"job {jid}: terminal ({state.value}) without an "
                    f"end time",
                ))
        known = {job.job_id for job in qs.jobs}
        for jid in sorted(running_ids - known):
            problems.append(Violation(
                "job-conservation", "job",
                f"job {jid}: running in the RM but unknown to the QS "
                f"(phantom job)",
            ))
        runtime_ids = set(target.rm.runtimes)
        if runtime_ids != running_ids:
            problems.append(Violation(
                "job-conservation", "job",
                f"runtime table {sorted(runtime_ids)} disagrees with the "
                f"running table {sorted(running_ids)}",
            ))
        return problems

    def check_job_retry(self, target: "FuzzTarget") -> List[Violation]:
        """Retry accounting: attempts bounded, terminal states final."""
        problems = []
        max_retries = target.qs.retry.max_retries
        for job in target.qs.jobs:
            if job.attempts > max_retries + 1:
                problems.append(Violation(
                    "job-retry", "job",
                    f"job {job.job_id}: {job.attempts} killed runs exceed "
                    f"the retry budget of {max_retries}",
                ))
            if job.state is JobState.QUEUED and job.attempts > max_retries:
                problems.append(Violation(
                    "job-retry", "job",
                    f"job {job.job_id}: requeued after exhausting the "
                    f"retry budget ({job.attempts} > {max_retries})",
                ))
            if job.state in (JobState.DONE, JobState.FAILED):
                entry = (job.state.value, job.end_time)
                seen = self._terminal.get(job.job_id)
                if seen is None:
                    self._terminal[job.job_id] = entry
                elif seen != entry:
                    problems.append(Violation(
                        "job-retry", "job",
                        f"job {job.job_id}: terminal state changed from "
                        f"{seen} to {entry} — terminal states are final",
                    ))
        return problems

    # ------------------------------------------------------------------
    # trace cursors (validate: burst-sanity, trace-consistency,
    # realloc-chain)
    # ------------------------------------------------------------------
    def check_realloc_chain(self, target: "FuzzTarget") -> List[Violation]:
        """New reallocation records chain from the previous allocation.

        A fault kill releases the whole partition without a
        reallocation record, so a retried job's chain restarts from
        zero — same rule as the post-hoc check, applied as the records
        appear.
        """
        problems = []
        records = target.reallocations()
        kills = target.kill_faults()
        for fault in kills[self._kill_idx:]:
            self._pending_kills.setdefault(fault.target, []).append(fault.time)
        self._kill_idx = len(kills)
        for record in records[self._realloc_idx:]:
            pending = self._pending_kills.get(record.job_id, [])
            # Kills strictly before this record reset the chain; a
            # kill at the same timestamp (start, kill and restart can
            # share one simulated instant) is consumed lazily, only as
            # the explanation for a restart the chain would otherwise
            # reject — same tie rule as the post-hoc validator.
            while pending and pending[0] < record.time - _EPS:
                pending.pop(0)
                self._expected[record.job_id] = 0
            expected = self._expected.get(record.job_id, 0)
            if record.old_procs != expected:
                if (record.old_procs == 0
                        and pending
                        and pending[0] <= record.time + _EPS):
                    pending.pop(0)
                else:
                    problems.append(Violation(
                        "realloc-chain", "alloc",
                        f"job {record.job_id}: reallocation chain broken at "
                        f"t={record.time:.3f} (expected old={expected}, "
                        f"recorded old={record.old_procs})",
                    ))
            if record.new_procs < 1:
                problems.append(Violation(
                    "realloc-chain", "alloc",
                    f"job {record.job_id}: allocated {record.new_procs} "
                    f"CPUs at t={record.time:.3f}",
                ))
            self._expected[record.job_id] = record.new_procs
        self._realloc_idx = len(records)
        return problems

    def check_burst_sanity(self, target: "FuzzTarget") -> List[Violation]:
        """New bursts: positive, on a real CPU, closed in the past,
        never overlapping the previous burst of their CPU."""
        problems = []
        now = target.sim.now
        for index, trace in enumerate(target.traces()):
            if trace is None:
                continue
            bursts = trace.bursts
            for burst in bursts[self._burst_idx.get(index, 0):]:
                if burst.duration <= 0:
                    problems.append(Violation(
                        "burst-sanity", "trace",
                        f"machine {index} cpu {burst.cpu}: non-positive "
                        f"burst {burst}",
                    ))
                if not 0 <= burst.cpu < trace.n_cpus:
                    problems.append(Violation(
                        "burst-sanity", "trace",
                        f"machine {index}: burst on unknown cpu {burst.cpu}",
                    ))
                    continue
                if burst.end > now + _EPS:
                    problems.append(Violation(
                        "burst-sanity", "trace",
                        f"machine {index} cpu {burst.cpu}: burst ends at "
                        f"{burst.end:.3f}, after now ({now:.3f})",
                    ))
                last_end = self._burst_end.get((index, burst.cpu))
                if last_end is not None and burst.start < last_end - _EPS:
                    problems.append(Violation(
                        "burst-sanity", "trace",
                        f"machine {index} cpu {burst.cpu}: burst "
                        f"[{burst.start:.3f},{burst.end:.3f}] overlaps the "
                        f"previous burst ending at {last_end:.3f}",
                    ))
                self._burst_end[(index, burst.cpu)] = burst.end
            self._burst_idx[index] = len(bursts)
        return problems

    # ------------------------------------------------------------------
    # policy coherence
    # ------------------------------------------------------------------
    def check_policy_sync(self, target: "FuzzTarget") -> List[Violation]:
        """The policy's remembered allocations match the machine's.

        Report-driven policies (PDPA, Equal_efficiency) keep per-job
        allocation memory; a fault or forced allocation that bypasses
        ``note_forced_allocation`` desynchronises them, and their next
        decision resizes partitions from stale numbers.
        """
        policy = getattr(target.rm, "policy", None)
        states = getattr(policy, "states", None)
        if not isinstance(states, dict):
            return []
        problems = []
        for job_id in sorted(target.rm.jobs):
            state = states.get(job_id)
            believed = getattr(state, "allocation", None)
            if state is None or believed is None:
                continue
            actual = target.allocation_of(job_id)
            if believed != actual:
                problems.append(Violation(
                    "policy-sync", "alloc",
                    f"job {job_id}: policy believes allocation {believed} "
                    f"but the machine holds {actual}",
                ))
        return problems

    def check_cluster_coscheduling(self, target: "FuzzTarget") -> List[Violation]:
        """Cluster targets: equal slices on every node a job spans."""
        coord = target.rm
        if not hasattr(coord, "co_scheduling_holds"):
            return []
        problems = []
        if not coord.co_scheduling_holds():
            problems.append(Violation(
                "cluster-coscheduling", "alloc",
                "co-scheduling broken: a job holds unequal slices "
                "across its spanned nodes",
            ))
        state_ids = set(coord.states)
        job_ids = set(coord.jobs)
        if state_ids != job_ids:
            problems.append(Violation(
                "cluster-coscheduling", "alloc",
                f"placement table {sorted(state_ids)} disagrees with the "
                f"running table {sorted(job_ids)}",
            ))
        for job_id in sorted(job_ids & state_ids):
            state = coord.states[job_id]
            held = sum(
                coord.machines[node].allocation_of(job_id)
                for node in state.nodes
            )
            if held != state.total_cpus:
                problems.append(Violation(
                    "cluster-coscheduling", "alloc",
                    f"job {job_id}: nodes hold {held} CPUs but the "
                    f"placement says {state.total_cpus}",
                ))
        return problems

    # ------------------------------------------------------------------
    # liveness (validate: ckpt-wedged)
    # ------------------------------------------------------------------
    def check_no_wedge(self, target: "FuzzTarget") -> List[Violation]:
        """An incomplete run must always have a pending event.

        Zero pending events with non-terminal jobs means nothing will
        ever fire again: queued jobs are lost, the graph is wedged.
        """
        if target.sim.pending_events == 0 and not target.qs.all_done:
            stuck = sorted(
                job.job_id for job in target.qs.jobs
                if job.state not in (JobState.DONE, JobState.FAILED)
            )
            return [Violation(
                "no-wedge", "job",
                f"no pending events but jobs {stuck} are not terminal "
                f"(wedged graph)",
            )]
        return []

    # ------------------------------------------------------------------
    # streaming invariants (validate: stream-conservation,
    # stream-bounded-queue, stream-recovery)
    # ------------------------------------------------------------------
    def check_stream_invariants(self, target: "FuzzTarget") -> List[Violation]:
        """Streaming targets pass the full stream audit at every cut.

        ``validate_stream`` is already stated over monotone counters
        and live state — callable at any instant — so the live oracle
        simply runs it verbatim: submissions conserved through
        admit/shed, the ingress bound honest (current backlog *and*
        recorded peak), and no journal replay expectation left behind.
        Batch targets have no streaming surface and return clean.
        """
        if not getattr(target, "is_stream", False):
            return []
        from repro.validate import validate_stream

        return list(validate_stream(target.session))


def final_audit(target: "FuzzTarget") -> List[Violation]:
    """Post-hoc audit of a fully drained target (validator parity).

    After a drain that completed every job, the live session must also
    satisfy the *post-hoc* validators — the completed run is harvested
    through ``session.finish()`` and passed to ``validate_run``.  Any
    disagreement between the silent live oracle and a complaining
    post-hoc validator (or vice versa) is itself a finding: the two
    formulations are contractually equivalent.

    Incomplete targets return no problems here (the live oracle's
    ``no-wedge`` check already flagged a wedge); cluster targets have
    no ``RunOutput`` surface, so the live oracle is their only audit.
    Streaming targets folded (and pruned) their records as jobs
    finished, so their post-hoc audit is ``validate_stream`` over the
    drained session instead of ``validate_run`` over a harvest.
    """
    from repro.validate import validate_run, validate_stream

    if not target.qs.all_done or target.is_cluster:
        return []
    if target.is_stream:
        return list(validate_stream(target.session))
    out = target.session.finish()
    return [
        v if isinstance(v, Violation) else Violation("post-hoc", "job", str(v))
        for v in validate_run(out)
    ]


# ----------------------------------------------------------------------
# harness-level checks (mid-sweep counterparts of validate_sweep)
# ----------------------------------------------------------------------
def check_sweep_accounting(
    stats: Any,
    cells: Optional[Any] = None,
    payloads: Optional[Any] = None,
    final: bool = True,
) -> List[Violation]:
    """Sweep books balance; with cells/payloads, no cell is lost.

    Mid-sweep (``final=False``) the accounted cells may trail the
    total; at the end they must match it exactly.
    """
    problems = []
    accounted = (
        stats.cache_hits + stats.resumed + stats.executed + stats.quarantined
    )
    if final and accounted != stats.cells:
        problems.append(Violation(
            "sweep-accounting", "sweep",
            f"stats unbalanced: {accounted} accounted != {stats.cells} cells",
        ))
    elif not final and accounted > stats.cells:
        problems.append(Violation(
            "sweep-accounting", "sweep",
            f"stats overcounted mid-sweep: {accounted} accounted > "
            f"{stats.cells} cells",
        ))
    if cells is not None and payloads is not None:
        quarantined = {f.key for f in stats.failures}
        for cell, payload in zip(cells, payloads):
            if payload is None and cell.key not in quarantined:
                problems.append(Violation(
                    "sweep-accounting", "sweep",
                    f"cell {cell.key!r}: lost (no payload, not quarantined)",
                ))
            if payload is not None and cell.key in quarantined:
                problems.append(Violation(
                    "sweep-accounting", "sweep",
                    f"cell {cell.key!r}: both quarantined and completed",
                ))
        if len(payloads) != len(cells):
            problems.append(Violation(
                "sweep-accounting", "sweep",
                f"payload count {len(payloads)} != cell count {len(cells)}",
            ))
    return problems


def check_sweep_journal(runner: Any, cells: Any, payloads: Any) -> List[Violation]:
    """Every completed cell journalled with an honest digest."""
    from repro.parallel import cell_key, payload_digest

    journal = getattr(runner, "journal", None)
    if journal is None or runner.cache is None:
        return []
    problems = []
    for cell, payload in zip(cells, payloads):
        if payload is None:
            continue
        entry = journal.get(cell_key(cell.fn, cell.params))
        if entry is None:
            problems.append(Violation(
                "sweep-journal", "sweep",
                f"cell {cell.key!r}: completed but not journalled",
            ))
        elif not entry.matches(payload):
            problems.append(Violation(
                "sweep-journal", "sweep",
                f"cell {cell.key!r}: journal digest {entry.digest[:12]}… "
                f"does not match payload digest "
                f"{payload_digest(payload)[:12]}…",
            ))
    return problems


def check_race(race: Any) -> List[Violation]:
    """Determinism-sanitizer findings as oracle violations."""
    return list(validate_race(race))


#: name -> callable resolver used by the completeness test; LiveOracle
#: methods are looked up by attribute, module functions directly.
_METHOD_OF: Mapping[str, str] = {
    "cpu-books": "check_cpu_books",
    "cpu-conservation": "check_cpu_conservation",
    "fault-offline": "check_fault_offline",
    "alloc-bounds": "check_alloc_bounds",
    "mpl-bound": "check_mpl_bound",
    "job-conservation": "check_job_conservation",
    "job-retry": "check_job_retry",
    "realloc-chain": "check_realloc_chain",
    "burst-sanity": "check_burst_sanity",
    "policy-sync": "check_policy_sync",
    "cluster-coscheduling": "check_cluster_coscheduling",
    "no-wedge": "check_no_wedge",
    "stream-invariants": "check_stream_invariants",
}


def resolve_check(name: str) -> Any:
    """The callable implementing oracle check *name* (KeyError if none).

    ``ckpt-roundtrip`` lives on the target (it mutates state through a
    save/restore cycle); the sweep/race checks are module functions;
    everything else is a :class:`LiveOracle` method.
    """
    if name in _METHOD_OF:
        return getattr(LiveOracle, _METHOD_OF[name])
    if name == "ckpt-roundtrip":
        from repro.fuzz.targets import FuzzTarget

        return FuzzTarget.checkpoint_roundtrip
    if name == "sweep-accounting":
        return check_sweep_accounting
    if name == "sweep-journal":
        return check_sweep_journal
    if name == "race":
        return check_race
    raise KeyError(f"unknown oracle check {name!r}")
