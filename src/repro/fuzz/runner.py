"""Deterministic fuzz campaigns (the engine behind ``repro fuzz``).

One campaign = one (policy, seed, budget) triple driven through the
hypothesis state machine.  Campaign verdicts are deterministic: the
machine class is seeded (``machine_for``), the example database is
disabled (no cross-run memory), and shrinking is hypothesis's
deterministic greedy pass — so the same seed always explores the same
rule sequences and lands on the same shrunk counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from hypothesis import HealthCheck, settings
from hypothesis.stateful import run_state_machine_as_test

from repro.fuzz.statemachine import FailureRecord, machine_for
from repro.fuzz.targets import FUZZ_POLICIES, FUZZ_STREAM_POLICIES


@dataclass
class CampaignResult:
    """Outcome of one policy's campaign."""

    policy: str
    seed: int
    budget: int
    steps: int
    stream: bool = False
    failure: Optional[FailureRecord] = None

    @property
    def ok(self) -> bool:
        """Whether the campaign finished without a counterexample."""
        return self.failure is None


def campaign_settings(budget: int, steps: int) -> settings:
    """Hypothesis settings for one deterministic campaign."""
    return settings(
        max_examples=budget,
        stateful_step_count=steps,
        database=None,  # determinism: no cross-run example memory
        deadline=None,
        suppress_health_check=(
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ),
    )


def run_campaign(
    policy: str, seed: int, budget: int, steps: int, stream: bool = False
) -> CampaignResult:
    """Fuzz one policy; returns the (shrunk) failure, if any.

    Hypothesis replays the minimal example last before raising, so the
    machine class's ``captured`` attribute holds the shrunk stimulus
    when the run raises.
    """
    machine = machine_for(policy, seed, stream=stream)
    result = CampaignResult(
        policy=policy, seed=seed, budget=budget, steps=steps, stream=stream
    )
    try:
        run_state_machine_as_test(
            machine, settings=campaign_settings(budget, steps)
        )
    except Exception as exc:
        failure = machine.captured
        if failure is None:
            # The harness died outside a rule (e.g. target construction).
            from repro.fuzz.stimulus import Stimulus

            failure = FailureRecord(
                stimulus=Stimulus(
                    policy=policy, seed=seed, ops=[], stream=stream
                ),
                crash=f"{type(exc).__name__}: {exc}",
            )
        result.failure = failure
    return result


def run_campaigns(
    policies: Optional[Sequence[str]] = None,
    seed: int = 0,
    budget: int = 60,
    steps: int = 50,
    stream: bool = False,
) -> List[CampaignResult]:
    """One campaign per policy, in the given (deterministic) order.

    With *stream* the campaigns drive the serve stack; the default
    policy set then excludes the cluster coordinator, which has no
    streaming twin.
    """
    if policies is None:
        policies = FUZZ_STREAM_POLICIES if stream else FUZZ_POLICIES
    return [
        run_campaign(policy, seed, budget, steps, stream=stream)
        for policy in policies
    ]
