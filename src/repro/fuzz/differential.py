"""Differential policy checking.

The same recorded stimulus, replayed under every policy.  Policies
are *supposed* to disagree about who gets CPUs — that is the paper's
whole subject — so the differential check compares only what no
scheduling decision may change:

* **CPU conservation** — free + allocated = healthy on every machine,
  at every step, under every policy;
* **job conservation** — every submitted job is in exactly one
  lifecycle bucket at every step, and terminal after a full drain;
* the rest of the incremental oracle (allocation bounds, MPL respect,
  fault accounting, trace sanity).

Policies may differ on *who* gets CPUs, never on *how many exist*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.fuzz.oracle import LiveOracle
from repro.fuzz.stimulus import Stimulus, apply_op
from repro.fuzz.targets import FUZZ_APPS, FUZZ_N_CPUS, FUZZ_POLICIES, FuzzTarget
from repro.qs.job import JobState
from repro.sim.rng import RandomStreams
from repro.validate import Violation


@dataclass
class DifferentialResult:
    """Per-policy verdicts for one shared stimulus."""

    violations: Dict[str, List[Violation]] = field(default_factory=dict)
    crashes: Dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Whether every policy preserved every conservation property."""
        return not self.crashes and all(
            not v for v in self.violations.values()
        )

    def describe(self) -> str:
        """One line per policy, deterministic order."""
        lines = []
        for policy in sorted(set(self.violations) | set(self.crashes)):
            if policy in self.crashes:
                lines.append(f"{policy}: CRASH {self.crashes[policy]}")
            elif self.violations.get(policy):
                lines.append(
                    f"{policy}: {len(self.violations[policy])} violation(s)"
                )
            else:
                lines.append(f"{policy}: ok")
        return "\n".join(lines)


def differential_check(
    ops: Sequence[Dict[str, Any]],
    seed: int = 0,
    policies: Sequence[str] = FUZZ_POLICIES,
) -> DifferentialResult:
    """Replay one op list under every policy; audit each step + the end.

    The op interpreter's deterministic guards already absorb surface
    differences (the cluster coordinator skips fault ops), so the same
    list is meaningful everywhere.  After the drain, every submitted
    job must be terminal under every policy — schedulers may reorder
    work, not lose it.
    """
    result = DifferentialResult()
    for policy in policies:
        violations: List[Violation] = []
        with FuzzTarget(policy, seed=seed) as target:
            oracle = LiveOracle()
            try:
                for op in ops:
                    violations.extend(apply_op(target, op))
                    violations.extend(oracle.check(target))
                    if violations:
                        break
                else:
                    target.drain()
                    violations.extend(oracle.check(target))
                    if not violations and not target.qs.all_done:
                        stuck = sorted(
                            job.job_id for job in target.qs.jobs
                            if job.state not in (JobState.DONE, JobState.FAILED)
                        )
                        violations.append(Violation(
                            "job-conservation", "job",
                            f"{policy}: jobs {stuck} never reached a "
                            f"terminal state after a full drain",
                        ))
            except Exception as exc:
                result.crashes[policy] = f"{type(exc).__name__}: {exc}"
        result.violations[policy] = violations
    return result


def random_stimulus(seed: int, n_ops: int = 40) -> Stimulus:
    """A deterministic pseudo-random op list for differential runs.

    Uses the repository's seeded :class:`RandomStreams` (never ambient
    randomness), so one (seed, n_ops) pair always names the same
    stimulus.  Weighted towards progress ops — a stimulus that never
    fires events never exercises the protocol.
    """
    rng = RandomStreams(seed).stream("fuzz-differential")
    apps = sorted(FUZZ_APPS)
    ops: List[Dict[str, Any]] = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.30:
            ops.append({
                "kind": "submit",
                "app": apps[rng.randrange(len(apps))],
                "request": 1 + rng.randrange(FUZZ_N_CPUS),
            })
        elif roll < 0.55:
            ops.append({"kind": "step", "n": 1 + rng.randrange(40)})
        elif roll < 0.70:
            ops.append({"kind": "advance", "dt": float(1 + rng.randrange(5))})
        elif roll < 0.80:
            ops.append({
                "kind": "cpu_fail",
                "cpu": rng.randrange(FUZZ_N_CPUS),
                "transient": bool(rng.randrange(2)),
            })
        elif roll < 0.88:
            ops.append({"kind": "cpu_repair", "cpu": rng.randrange(FUZZ_N_CPUS)})
        elif roll < 0.93:
            ops.append({"kind": "crash", "victim": rng.randrange(8)})
        elif roll < 0.98:
            ops.append({
                "kind": "force",
                "victim": rng.randrange(8),
                "procs": 1 + rng.randrange(FUZZ_N_CPUS),
            })
        else:
            ops.append({"kind": "checkpoint"})
    return Stimulus(policy="*", seed=seed, ops=ops)
