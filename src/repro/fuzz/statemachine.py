"""The hypothesis ``RuleBasedStateMachine`` driving the protocol.

Each rule appends one op to the accumulated stimulus, interprets it
against the live target, and asserts the full incremental oracle.  On
a violation the machine records the *minimal* failing stimulus on its
class — hypothesis replays the shrunk example last, so whatever the
class holds after the run raised is the shrunk counterexample, ready
to be written to the corpus (the capture-on-class pattern keeps the
data reachable even though hypothesis swallows the machine instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Type

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.fuzz.oracle import LiveOracle
from repro.fuzz.stimulus import Stimulus, apply_op
from repro.fuzz.targets import FUZZ_APPS, FUZZ_N_CPUS, FuzzTarget
from repro.validate import Violation, render_violations

#: time quanta the ``advance`` rule may pick (coarse on purpose:
#: interesting interleavings come from event interleaving, not from
#: exotic floats)
_ADVANCE_CHOICES = (0.5, 1.0, 2.0, 5.0, 10.0)


class OracleViolation(AssertionError):
    """Raised by the state machine when the oracle finds violations."""

    def __init__(self, violations: List[Violation], stimulus: Stimulus) -> None:
        self.violations = violations
        self.stimulus = stimulus
        super().__init__(
            f"{len(violations)} oracle violation(s) after "
            f"{len(stimulus.ops)} ops under {stimulus.policy}:\n"
            f"{render_violations(violations)}"
        )


@dataclass
class FailureRecord:
    """The (shrunk) stimulus that broke an invariant, plus the verdict."""

    stimulus: Stimulus
    violations: List[Violation] = field(default_factory=list)
    #: exception text when the harness crashed instead of the oracle
    #: failing (still a finding — the protocol raised mid-transition)
    crash: Optional[str] = None


class ProtocolFuzz(RuleBasedStateMachine):
    """Arbitrary interleavings of the coordination protocol's surface.

    Subclasses produced by :func:`machine_for` pin ``policy`` and
    ``seed_value``; the base class holds the rules, which hypothesis
    collects across the hierarchy.
    """

    #: pinned by machine_for
    policy: ClassVar[str] = ""
    seed_value: ClassVar[int] = 0
    #: drive the streaming (serve-stack) target instead of the batch one
    stream: ClassVar[bool] = False
    #: the last failure seen by any instance of this class; after a
    #: failed run this holds the minimal shrunk example
    captured: ClassVar[Optional[FailureRecord]] = None

    def __init__(self) -> None:
        super().__init__()
        if not self.policy:
            raise TypeError("use machine_for(policy, seed), not ProtocolFuzz")
        self.target = FuzzTarget(
            self.policy, seed=self.seed_value, stream=self.stream
        )
        self.oracle = LiveOracle()
        self.ops: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # the one checked transition
    # ------------------------------------------------------------------
    def _apply(self, op: Dict[str, Any]) -> None:
        self.ops.append(op)
        try:
            violations = apply_op(self.target, op)
            violations.extend(self.oracle.check(self.target))
        except Exception as exc:
            if isinstance(exc, OracleViolation):
                raise
            type(self).captured = FailureRecord(
                stimulus=self._stimulus(),
                crash=f"{type(exc).__name__}: {exc}",
            )
            raise
        if violations:
            type(self).captured = FailureRecord(
                stimulus=self._stimulus(), violations=violations
            )
            raise OracleViolation(violations, self._stimulus())

    def _stimulus(self) -> Stimulus:
        return Stimulus(
            policy=self.policy, seed=self.seed_value, ops=list(self.ops),
            stream=self.stream,
        )

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(
        app=st.sampled_from(sorted(FUZZ_APPS)),
        request=st.integers(min_value=1, max_value=FUZZ_N_CPUS),
    )
    def submit(self, app: str, request: int) -> None:
        """A job arrives now."""
        self._apply({"kind": "submit", "app": app, "request": request})

    @rule(n=st.integers(min_value=1, max_value=50))
    def step(self, n: int) -> None:
        """Fire up to *n* events (iteration completions, arrivals...)."""
        self._apply({"kind": "step", "n": n})

    @rule(dt=st.sampled_from(_ADVANCE_CHOICES))
    def advance(self, dt: float) -> None:
        """Run *dt* simulated seconds forward."""
        self._apply({"kind": "advance", "dt": dt})

    @rule(
        cpu=st.integers(min_value=0, max_value=FUZZ_N_CPUS - 1),
        transient=st.booleans(),
    )
    def cpu_fail(self, cpu: int, transient: bool) -> None:
        """A CPU goes offline under a running workload."""
        self._apply({"kind": "cpu_fail", "cpu": cpu, "transient": transient})

    @rule(cpu=st.integers(min_value=0, max_value=FUZZ_N_CPUS - 1))
    def cpu_repair(self, cpu: int) -> None:
        """A failed CPU is repaired (possibly concurrently with work)."""
        self._apply({"kind": "cpu_repair", "cpu": cpu})

    @rule(victim=st.integers(min_value=0, max_value=7))
    def crash(self, victim: int) -> None:
        """A running application crashes and is torn down."""
        self._apply({"kind": "crash", "victim": victim})

    @rule(
        victim=st.integers(min_value=0, max_value=7),
        procs=st.integers(min_value=1, max_value=FUZZ_N_CPUS),
    )
    def force(self, victim: int, procs: int) -> None:
        """Graceful degradation imposes an allocation outside the policy."""
        self._apply({"kind": "force", "victim": victim, "procs": procs})

    @rule()
    def checkpoint(self) -> None:
        """Save/audit/restore at this cut point; continue on the restored graph."""
        self._apply({"kind": "checkpoint"})

    @rule()
    def prune(self) -> None:
        """Reclaim terminal jobs mid-run (streaming; batch no-op)."""
        self._apply({"kind": "prune"})

    # ------------------------------------------------------------------
    # end of every example: the run must be completable
    # ------------------------------------------------------------------
    def teardown(self) -> None:
        try:
            self._apply({"kind": "drain"})
            self._final_audit()
        finally:
            self.target.close()

    def _final_audit(self) -> None:
        """After the drain the run must be finishable and fully valid."""
        from repro.fuzz.oracle import final_audit

        try:
            problems = final_audit(self.target)
        except Exception as exc:
            type(self).captured = FailureRecord(
                stimulus=self._stimulus(),
                crash=f"{type(exc).__name__}: {exc}",
            )
            raise
        if problems:
            type(self).captured = FailureRecord(
                stimulus=self._stimulus(), violations=problems
            )
            raise OracleViolation(problems, self._stimulus())


def machine_for(
    policy: str, seed: int, stream: bool = False
) -> Type[ProtocolFuzz]:
    """A seeded state-machine class fuzzing *policy*.

    Setting ``_hypothesis_internal_use_seed`` is what ``@seed(N)``
    does; it pins hypothesis's randomness so the same (policy, seed)
    explores the same rule sequences and reaches the same verdict.
    With *stream*, every example drives the serve stack: submissions
    go through bounded-ingress admission, shed over capacity, and the
    checkpoint rule round-trips the whole streaming graph.
    """
    namespace = {
        "policy": policy,
        "seed_value": seed,
        "stream": stream,
        "captured": None,
        "_hypothesis_internal_use_seed": seed,
    }
    suffix = "_stream" if stream else ""
    return type(
        f"ProtocolFuzz_{policy}_{seed}{suffix}", (ProtocolFuzz,), namespace
    )
