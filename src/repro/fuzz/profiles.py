"""Tiered hypothesis profiles shared by the whole test suite.

The suite used to scatter ad-hoc ``@settings(max_examples=N)`` over
every property test, which made "run the fast version in CI" and "run
the deep version nightly" impossible without editing files.  Instead,
property tests now declare a **tier** — how expensive one example is —
and the active **profile** scales every tier at once:

=============  =========================================  ===========
tier           meant for                                  dev examples
=============  =========================================  ===========
``quick``      slow end-to-end properties                 15
``slow``       moderately expensive properties            40
``standard``   ordinary single-run properties             80
``determinism``cheap pure-function properties             200
=============  =========================================  ===========

Profiles multiply the tier budgets: ``ci`` ×0.2 (a pull-request gate),
``dev`` ×1 (the default), ``nightly`` ×5 (the scheduled deep run).
Select one with ``REPRO_HYPOTHESIS_PROFILE=ci|dev|nightly`` or
hypothesis's own ``--hypothesis-profile``; the environment variable
wins because CI sets it globally.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from hypothesis import HealthCheck, settings

#: profile name -> multiplier over the dev example budgets
PROFILES: Dict[str, float] = {"ci": 0.2, "dev": 1.0, "nightly": 5.0}

#: tier name -> dev-profile max_examples
TIER_BUDGETS: Dict[str, int] = {
    "quick": 15,
    "slow": 40,
    "standard": 80,
    "determinism": 200,
}

_ENV_VAR = "REPRO_HYPOTHESIS_PROFILE"

#: health checks suppressed suite-wide: examples here are simulations,
#: so "too slow" and "filtered too much" are budget questions the
#: tiers already answer, not bugs.
_SUPPRESSED: Tuple[HealthCheck, ...] = (
    HealthCheck.too_slow,
    HealthCheck.data_too_large,
    HealthCheck.filter_too_much,
)


def active_profile() -> str:
    """The profile selected by the environment (default ``dev``)."""
    name = os.environ.get(_ENV_VAR, "dev")
    if name not in PROFILES:
        raise ValueError(
            f"{_ENV_VAR}={name!r} is not a profile; "
            f"expected one of {sorted(PROFILES)}"
        )
    return name


def examples_for(tier: str, profile: str) -> int:
    """Scaled example budget for one tier under one profile."""
    budget = TIER_BUDGETS[tier] * PROFILES[profile]
    return max(1, int(round(budget)))


def _tier_settings(tier: str, profile: str) -> settings:
    return settings(
        max_examples=examples_for(tier, profile),
        deadline=None,
        suppress_health_check=_SUPPRESSED,
    )


def register_profiles() -> str:
    """Register every (profile × tier) with hypothesis; load the active one.

    Returns the active profile name.  Registered names:

    * ``ci`` / ``dev`` / ``nightly`` — the profile at the ``standard``
      tier (what bare property tests get);
    * per-tier settings are exposed via :func:`tier_settings`, which
      reads the active profile at decoration time.
    """
    for profile in PROFILES:
        settings.register_profile(
            profile, _tier_settings("standard", profile)
        )
    active = active_profile()
    settings.load_profile(active)
    return active


def tier_settings(tier: str) -> settings:
    """The settings object for *tier* under the active profile.

    Usable directly as a decorator::

        @tier_settings("determinism")
        @given(...)
        def test_pure_property(...): ...
    """
    if tier not in TIER_BUDGETS:
        raise ValueError(
            f"unknown tier {tier!r}; expected one of {sorted(TIER_BUDGETS)}"
        )
    return _tier_settings(tier, active_profile())


#: fuzz campaign budgets per profile: (max_examples, stateful steps)
CAMPAIGN_BUDGETS: Dict[str, Tuple[int, int]] = {
    "ci": (15, 30),
    "dev": (60, 50),
    "nightly": (300, 100),
}
