"""Stateful protocol fuzzing for the RM/QS/runtime coordination protocol.

ROADMAP item 5: before the engine is partitioned or vectorised, the
protocol the paper defines — QS↔RM coordinated admission, NthLib
malleability at iteration boundaries, SelfAnalyzer-driven reallocation,
fault recovery — needs an adversarial harness.  This package provides:

* :mod:`repro.fuzz.oracle` — the invariants of :mod:`repro.validate`
  reformulated as an *incremental* oracle callable on live state
  between any two events (CPU conservation, job conservation,
  allocation bounds, MPL respect, fault-capacity accounting).
* :mod:`repro.fuzz.targets` — a live Simulator+RM+QS session wrapped
  as a fuzzable target, for each space-sharing policy and the cluster
  coordinator, including checkpoint round-trips at arbitrary cut
  points.
* :mod:`repro.fuzz.stimulus` — the op vocabulary (arrival, progress,
  fault, repair, crash, forced allocation, checkpoint) with a JSON
  codec, so any interleaving is replayable.
* :mod:`repro.fuzz.statemachine` — the hypothesis
  ``RuleBasedStateMachine`` driving arbitrary interleavings with the
  oracle asserted after every rule.
* :mod:`repro.fuzz.corpus` — shrunk counterexamples written as
  deterministic corpus files under ``tests/fuzz_corpus/`` and replayed
  through the checkpoint/replay machinery as pinned regressions.
* :mod:`repro.fuzz.differential` — the same stimulus replayed under
  every policy; policies may disagree on *who* gets CPUs, never on
  *how many exist*.
* :mod:`repro.fuzz.profiles` — tiered hypothesis settings
  (``ci`` / ``dev`` / ``nightly``) shared with the whole test suite.

The ``repro fuzz`` CLI subcommand drives a deterministic campaign:
same seed, same rule sequence, same verdict.  ``repro fuzz --stream``
points the same machine at the open-system serve stack
(:mod:`repro.serve`): bounded-ingress admission, mid-campaign pruning,
and the stream invariants (``validate_stream``) asserted after every
rule.
"""

from repro.fuzz.corpus import load_corpus, replay_corpus, write_corpus
from repro.fuzz.differential import differential_check, random_stimulus
from repro.fuzz.oracle import ORACLE_CHECKS, ORACLE_PARITY, LiveOracle
from repro.fuzz.profiles import register_profiles
from repro.fuzz.statemachine import machine_for
from repro.fuzz.stimulus import apply_op
from repro.fuzz.targets import (
    FUZZ_N_CPUS,
    FUZZ_POLICIES,
    FUZZ_STREAM_POLICIES,
    FuzzTarget,
)

__all__ = [
    "FUZZ_N_CPUS",
    "FUZZ_POLICIES",
    "FUZZ_STREAM_POLICIES",
    "FuzzTarget",
    "LiveOracle",
    "ORACLE_CHECKS",
    "ORACLE_PARITY",
    "apply_op",
    "differential_check",
    "load_corpus",
    "machine_for",
    "random_stimulus",
    "register_profiles",
    "replay_corpus",
    "write_corpus",
]
