"""Process-pool sweep executor with supervised, restartable execution.

Every paper artefact is a sweep over independent (policy, workload,
load, seed) cells; :class:`SweepRunner` fans those cells out over
``multiprocessing`` workers while preserving the sequential semantics:

* **Determinism** — a cell is a pure function of its parameters (each
  carries its own :class:`~repro.experiments.common.ExperimentConfig`
  with an explicit master seed), so where it executes cannot change
  its result.  Every record is normalised through canonical JSON, and
  the serial fallback (``jobs=1``) produces byte-identical records.
* **Ordered collection** — results come back in submission order no
  matter which worker finishes first.
* **Caching** — with a :class:`~repro.parallel.cache.ResultCache`,
  finished cells are stored content-addressed (config + code version),
  so re-runs of unchanged cells are served from disk.
* **Supervision** — with a
  :class:`~repro.parallel.supervisor.SupervisionPolicy`, crashed or
  hung cells are retried with backoff, broken pools are rebuilt, and
  cells that keep failing are quarantined as *poison cells* and
  reported in :class:`SweepStats` instead of aborting the sweep.
* **Journalling** — with a
  :class:`~repro.parallel.journal.SweepJournal`, every completion is
  durably recorded, so an interrupted sweep can ``resume`` and replay
  finished cells byte-identically instead of recomputing them.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import logging
import multiprocessing
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.parallel.cache import (
    ResultCache,
    UnserialisableValue,
    canonical_dumps,
    cell_key,
)
from repro.parallel.errors import UnserialisableRecord
from repro.parallel.journal import JournalWriteError, SweepJournal
from repro.parallel.supervisor import (
    CellFailure,
    PoolSupervisor,
    SupervisionPolicy,
    run_serial_supervised,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Human-readable label, unique within one sweep (used in progress
        and error messages; the cache key is content-derived, not this).
    fn:
        Dotted path ``"package.module:function"`` to a module-level
        function.  A string — not a callable — so cells pickle cleanly
        under any multiprocessing start method and hash stably.
    params:
        Keyword arguments for ``fn``.  Must be picklable; for caching
        they must also canonicalise (plain values and dataclasses).
    harness:
        **Host-side** keyword arguments merged into the call but
        excluded from the cache key: where the cell runs from, not
        what it computes.  A cell's result must not depend on them —
        that is what keeps a record cached under one harness
        configuration valid under every other.  The reserved key
        ``"checkpointable": True`` declares that ``fn`` accepts a
        ``checkpoint`` spec; the runner fills one in when it has a
        :class:`SweepCheckpointPolicy` and drops the flag otherwise.
    """

    key: str
    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)
    harness: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCheckpointPolicy:
    """Autosnapshot configuration for checkpointable sweep cells.

    Each opted-in cell (``harness={"checkpointable": True}``) receives
    a ``checkpoint`` spec naming a snapshot file under *directory*
    (keyed by the cell's content-derived cache key, so two different
    experiments can never collide on a snapshot) and the autosnapshot
    cadence.  A cell that is retried after a crash, timeout or SIGKILL
    finds its last autosnapshot at that path and resumes from it
    instead of recomputing from scratch — with byte-identical output
    either way.
    """

    directory: Path
    every_events: Optional[int] = None
    every_sim_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1, got {self.every_events}"
            )
        if self.every_sim_seconds is not None and self.every_sim_seconds <= 0:
            raise ValueError(
                f"every_sim_seconds must be positive, got {self.every_sim_seconds}"
            )
        if self.every_events is None and self.every_sim_seconds is None:
            raise ValueError(
                "checkpoint policy needs every_events and/or every_sim_seconds"
            )

    def spec_for(self, key: str) -> Dict[str, Any]:
        """The ``checkpoint`` kwarg injected into one cell's call."""
        return {
            "path": str(Path(self.directory) / f"{key}.ckpt"),
            "every_events": self.every_events,
            "every_sim_seconds": self.every_sim_seconds,
        }


@dataclass
class SweepStats:
    """Bookkeeping for one :meth:`SweepRunner.run` call.

    ``executed`` counts cells that actually *completed* execution (not
    merely started); ``retried`` counts re-attempts after failures;
    ``quarantined`` counts poison cells abandoned after exhausting
    their retry budget; ``resumed`` counts cells replayed from the
    sweep journal; ``degraded`` counts cells that fell back to serial
    execution because no worker pool could be built;
    ``storage_degraded`` counts completions that could not be
    journalled because the journal lost durability (their results are
    correct but a later ``--resume`` will recompute them).
    """

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0
    retried: int = 0
    quarantined: int = 0
    resumed: int = 0
    degraded: int = 0
    storage_degraded: int = 0
    #: one :class:`~repro.parallel.supervisor.CellFailure` per poison cell
    failures: List[CellFailure] = field(default_factory=list)

    def accumulate(self, other: "SweepStats") -> None:
        """Fold *other* into this (for multi-sweep totals)."""
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.retried += other.retried
        self.quarantined += other.quarantined
        self.resumed += other.resumed
        self.degraded += other.degraded
        self.storage_degraded += other.storage_degraded
        self.failures.extend(other.failures)

    def summary_line(self) -> str:
        """One-line human-readable account of the sweep."""
        parts = [f"{self.cells} cells", f"{self.executed} executed"]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cache hits")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.retried:
            parts.append(f"{self.retried} retries")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.degraded:
            parts.append(f"{self.degraded} degraded to serial")
        if self.storage_degraded:
            parts.append(f"{self.storage_degraded} unjournaled (storage)")
        return ", ".join(parts)


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-cell seed from a base seed and cell identity.

    Stable across processes and Python versions (unlike ``hash``), so a
    sweep can give every cell its own independent stream while staying
    reproducible: ``derive_seed(0, "w2", "PDPA", 1.0)`` is a constant.
    """
    text = ":".join([str(base_seed)] + [repr(p) for p in parts])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF


def resolve_cell_fn(fn: str) -> Callable[..., Any]:
    """Import the module-level function a cell names."""
    module_name, sep, attr = fn.partition(":")
    if not sep or not attr:
        raise ValueError(
            f"cell fn must be 'module.path:function', got {fn!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from exc


def execute_cell(fn: str, params: Mapping[str, Any]) -> str:
    """Run one cell and return its record as canonical JSON.

    Serialising inside the worker keeps the parent's collection loop
    cheap and guarantees the serial and parallel paths emit the same
    bytes (both go through :func:`canonical_dumps`).  A record that
    cannot be canonicalised losslessly (it would hit the ``repr``
    fallback and could never be decoded back) raises
    :class:`~repro.parallel.errors.UnserialisableRecord` instead of
    being silently cached as garbage.
    """
    record = resolve_cell_fn(fn)(**params)
    try:
        return canonical_dumps(record, strict=True)
    except UnserialisableValue as exc:
        raise UnserialisableRecord(fn, [exc.path]) from exc


def _worker(index: int, fn: str, params: Mapping[str, Any]) -> Tuple[int, str]:
    return index, execute_cell(fn, params)


class SweepRunner:
    """Executes sweep cells, optionally in parallel and/or cached.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every cell in the
        calling process — the serial fallback, byte-identical to the
        parallel path.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    mp_context:
        Optional multiprocessing context (e.g. from
        ``multiprocessing.get_context("spawn")``); defaults to the
        platform default.
    supervision:
        Optional :class:`SupervisionPolicy`.  ``None`` keeps PR 2's
        fail-fast behaviour: the first cell failure propagates.  With
        a policy, failures are retried and poison cells quarantined
        (their slot in :meth:`run` is ``None``; see ``strict``).
    journal:
        Optional :class:`SweepJournal`.  Completions are durably
        appended; a journal opened with ``resume=True`` replays
        journalled cells (verified against the cache) without
        re-executing them.
    strict:
        With supervision, raise
        :class:`~repro.parallel.errors.PoisonCellError` as soon as any
        cell exhausts its retry budget instead of quarantining it.
    checkpoint:
        Optional :class:`SweepCheckpointPolicy`.  Checkpointable cells
        autosnapshot on its cadence and resume from their last
        snapshot when retried, so a SIGKILL'd or timed-out cell loses
        at most one checkpoint interval of work.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[Any] = None,
        supervision: Optional[SupervisionPolicy] = None,
        journal: Optional[SweepJournal] = None,
        strict: bool = False,
        checkpoint: Optional[SweepCheckpointPolicy] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if journal is not None and cache is None and journal.resume:
            raise ValueError(
                "journal resume requires a ResultCache (the journal stores "
                "digests; the payload bytes live in the cache)"
            )
        self.jobs = jobs
        self.cache = cache
        self.mp_context = mp_context
        self.supervision = supervision
        self.journal = journal
        self.strict = strict
        self.checkpoint = checkpoint
        #: stats of the most recent run() call
        self.last_stats = SweepStats()
        #: stats accumulated over every run() of this runner's lifetime
        self.total_stats = SweepStats()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> List[Any]:
        """Execute *cells*; returns their records in submission order.

        Records are the cells' return values after a canonical-JSON
        round trip, so a record is the same object tree whether it was
        computed serially, in a worker, served from the cache, or
        replayed from the journal.  Quarantined poison cells yield
        ``None`` (consult :attr:`last_stats` for their failure log).
        """
        payloads = self.run_serialized(cells)
        return [None if p is None else json.loads(p) for p in payloads]

    def run_serialized(self, cells: Sequence[SweepCell]) -> List[Optional[str]]:
        """Like :meth:`run` but returns the canonical-JSON payloads."""
        stats = SweepStats(cells=len(cells))
        self.last_stats = stats
        payloads: List[Optional[str]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        pending: List[int] = []

        for i, cell in enumerate(cells):
            if self.cache is not None:
                keys[i] = cell_key(cell.fn, cell.params)
                if self._replay(i, cell, keys[i], payloads, stats):
                    continue
                hit = self.cache.get(keys[i])
                if hit is not None:
                    payloads[i] = hit
                    stats.cache_hits += 1
                    self._journal_entry(keys[i], hit, cell.key)
                    continue
            pending.append(i)

        quarantined: List[int] = []
        if pending:
            # Resolve harness-side call arguments (checkpoint specs,
            # ...) for the cells that will actually execute.  Cache
            # keys were computed above from cell.params alone, so the
            # harness cannot perturb them.
            exec_cells = list(cells)
            for i in pending:
                exec_cells[i] = self._resolve(cells[i], keys[i])

            def complete(index: int, payload: str) -> None:
                payloads[index] = payload
                stats.executed += 1
                self._store(keys[index], payload)
                if keys[index] is not None:
                    self._journal_entry(keys[index], payload, cells[index].key)

            if self.supervision is None:
                if self.jobs == 1 or len(pending) == 1:
                    for i in pending:
                        complete(i, execute_cell(exec_cells[i].fn, exec_cells[i].params))
                else:
                    self._run_pool_fail_fast(exec_cells, pending, complete)
            elif self.jobs == 1:
                quarantined = run_serial_supervised(
                    exec_cells, pending, self.supervision, execute_cell,
                    complete, stats=stats, strict=self.strict,
                )
            else:
                supervisor = PoolSupervisor(
                    exec_cells, self.supervision, _worker, complete, stats,
                    jobs=self.jobs, mp_context=self.mp_context,
                    strict=self.strict,
                )
                quarantined = supervisor.run(pending)

        missing = [
            i for i, p in enumerate(payloads)
            if p is None and i not in quarantined
        ]
        assert not missing, f"lost cells (no payload, not quarantined): {missing}"
        self.total_stats.accumulate(stats)
        return payloads

    # ------------------------------------------------------------------
    # harness resolution
    # ------------------------------------------------------------------
    def _resolve(self, cell: SweepCell, key: Optional[str]) -> SweepCell:
        """Merge a cell's harness arguments into its call parameters.

        The ``checkpointable`` flag is consumed here: when this runner
        carries a :class:`SweepCheckpointPolicy` it becomes a concrete
        ``checkpoint`` spec (snapshot path keyed by the cell's cache
        key), otherwise it is dropped and the cell runs plain.
        """
        if not cell.harness and self.checkpoint is None:
            return cell
        merged = dict(cell.params)
        harness = dict(cell.harness)
        checkpointable = bool(harness.pop("checkpointable", False))
        merged.update(harness)
        if checkpointable and self.checkpoint is not None:
            merged["checkpoint"] = self.checkpoint.spec_for(
                key if key is not None else cell_key(cell.fn, cell.params)
            )
        return replace(cell, params=merged, harness={})

    # ------------------------------------------------------------------
    # journal replay
    # ------------------------------------------------------------------
    def _replay(
        self,
        index: int,
        cell: SweepCell,
        key: str,
        payloads: List[Optional[str]],
        stats: SweepStats,
    ) -> bool:
        """Serve cell *index* from the journal + cache, if possible."""
        if self.journal is None or not self.journal.resume:
            return False
        entry = self.journal.get(key)
        if entry is None:
            return False
        assert self.cache is not None  # enforced in __init__
        payload = self.cache.get(key)
        if payload is None or not entry.matches(payload):
            # The journal promises bytes the cache no longer holds
            # (rotted or pruned since the journal was written): the
            # promise is void, recompute the cell.
            return False
        payloads[index] = payload
        stats.resumed += 1
        return True

    def _journal_entry(self, key: str, payload: str, label: str) -> None:
        """Journal one completion; degrade honestly if the journal broke.

        A journal that lost durability (fsyncgate, ENOSPC) raises
        :class:`JournalWriteError` on every append.  The completion
        itself is safe — the payload is already in the caller's hands
        — so the sweep continues *unjournaled*: correct results now,
        honest recomputation on a later ``--resume``.  Counted per
        completion in ``storage_degraded`` so validation and summary
        lines can tell a full journal from a broken one.
        """
        if self.journal is None or self.journal.get(key) is not None:
            return
        try:
            self.journal.append(key, payload, label=label)
        except JournalWriteError as exc:
            stats = self.last_stats
            if stats.storage_degraded == 0:
                logger.warning(
                    "sweep journal lost durability (%s) — continuing "
                    "unjournaled; a later --resume will recompute these "
                    "cells", exc,
                )
            stats.storage_degraded += 1

    # ------------------------------------------------------------------
    # unsupervised pool (PR 2 semantics: first failure aborts)
    # ------------------------------------------------------------------
    def _run_pool_fail_fast(
        self,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        complete: Callable[[int, str], None],
    ) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        ctx = self.mp_context or multiprocessing.get_context()
        workers = min(self.jobs, len(pending))
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        except (OSError, ValueError, ImportError, RuntimeError):
            # mp context unusable (no /dev/shm, sandboxed semaphores,
            # ...): degrade to the serial path rather than failing.
            self.last_stats.degraded += len(pending)
            for i in pending:
                complete(i, execute_cell(cells[i].fn, cells[i].params))
            return
        with pool:
            futures = {
                pool.submit(_worker, i, cells[i].fn, dict(cells[i].params))
                for i in pending
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, payload = future.result()
                    complete(index, payload)

    def _store(self, key: Optional[str], payload: Optional[str]) -> None:
        if self.cache is not None and key is not None and payload is not None:
            self.cache.put(key, payload)
