"""Process-pool sweep executor.

Every paper artefact is a sweep over independent (policy, workload,
load, seed) cells; :class:`SweepRunner` fans those cells out over
``multiprocessing`` workers while preserving the sequential semantics:

* **Determinism** — a cell is a pure function of its parameters (each
  carries its own :class:`~repro.experiments.common.ExperimentConfig`
  with an explicit master seed), so where it executes cannot change
  its result.  Every record is normalised through canonical JSON, and
  the serial fallback (``jobs=1``) produces byte-identical records.
* **Ordered collection** — results come back in submission order no
  matter which worker finishes first.
* **Caching** — with a :class:`~repro.parallel.cache.ResultCache`,
  finished cells are stored content-addressed (config + code version),
  so re-runs of unchanged cells are served from disk.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.parallel.cache import ResultCache, canonical_dumps, cell_key


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Human-readable label, unique within one sweep (used in progress
        and error messages; the cache key is content-derived, not this).
    fn:
        Dotted path ``"package.module:function"`` to a module-level
        function.  A string — not a callable — so cells pickle cleanly
        under any multiprocessing start method and hash stably.
    params:
        Keyword arguments for ``fn``.  Must be picklable; for caching
        they must also canonicalise (plain values and dataclasses).
    """

    key: str
    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepStats:
    """Bookkeeping for one :meth:`SweepRunner.run` call."""

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-cell seed from a base seed and cell identity.

    Stable across processes and Python versions (unlike ``hash``), so a
    sweep can give every cell its own independent stream while staying
    reproducible: ``derive_seed(0, "w2", "PDPA", 1.0)`` is a constant.
    """
    text = ":".join([str(base_seed)] + [repr(p) for p in parts])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF


def resolve_cell_fn(fn: str) -> Callable[..., Any]:
    """Import the module-level function a cell names."""
    module_name, sep, attr = fn.partition(":")
    if not sep or not attr:
        raise ValueError(
            f"cell fn must be 'module.path:function', got {fn!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from exc


def execute_cell(fn: str, params: Mapping[str, Any]) -> str:
    """Run one cell and return its record as canonical JSON.

    Serialising inside the worker keeps the parent's collection loop
    cheap and guarantees the serial and parallel paths emit the same
    bytes (both go through :func:`canonical_dumps`).
    """
    record = resolve_cell_fn(fn)(**params)
    return canonical_dumps(record)


def _worker(index: int, fn: str, params: Mapping[str, Any]) -> Tuple[int, str]:
    return index, execute_cell(fn, params)


class SweepRunner:
    """Executes sweep cells, optionally in parallel and/or cached.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every cell in the
        calling process — the serial fallback, byte-identical to the
        parallel path.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    mp_context:
        Optional multiprocessing context (e.g. from
        ``multiprocessing.get_context("spawn")``); defaults to the
        platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[Any] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.mp_context = mp_context
        #: stats of the most recent run() call
        self.last_stats = SweepStats()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> List[Any]:
        """Execute *cells*; returns their records in submission order.

        Records are the cells' return values after a canonical-JSON
        round trip, so a record is the same object tree whether it was
        computed serially, in a worker, or served from the cache.
        """
        payloads = self.run_serialized(cells)
        return [json.loads(p) for p in payloads]

    def run_serialized(self, cells: Sequence[SweepCell]) -> List[str]:
        """Like :meth:`run` but returns the canonical-JSON payloads."""
        stats = SweepStats(cells=len(cells))
        self.last_stats = stats
        payloads: List[Optional[str]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        pending: List[int] = []

        for i, cell in enumerate(cells):
            if self.cache is not None:
                keys[i] = cell_key(cell.fn, cell.params)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    payloads[i] = hit
                    stats.cache_hits += 1
                    continue
            pending.append(i)

        if pending:
            stats.executed = len(pending)
            if self.jobs == 1 or len(pending) == 1:
                for i in pending:
                    payloads[i] = execute_cell(cells[i].fn, cells[i].params)
                    self._store(keys[i], payloads[i])
            else:
                self._run_pool(cells, pending, payloads, keys)

        assert all(p is not None for p in payloads)
        return payloads  # type: ignore[return-value]

    def _run_pool(
        self,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        payloads: List[Optional[str]],
        keys: Sequence[Optional[str]],
    ) -> None:
        ctx = self.mp_context or multiprocessing.get_context()
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(_worker, i, cells[i].fn, dict(cells[i].params))
                for i in pending
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, payload = future.result()
                    payloads[index] = payload
                    self._store(keys[index], payload)

    def _store(self, key: Optional[str], payload: Optional[str]) -> None:
        if self.cache is not None and key is not None and payload is not None:
            self.cache.put(key, payload)
