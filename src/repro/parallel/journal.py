"""Write-ahead sweep journal: crash-safe progress for long sweeps.

The :class:`~repro.parallel.cache.ResultCache` makes finished cells
*reusable*; the journal makes a sweep's **progress** durable.  Every
completed cell appends one JSONL record — cache key, payload digest,
payload length — to an append-only file that is flushed and
``fsync``'d before the runner moves on.  Kill the parent process at
any instant and the journal still names exactly the cells that
finished, each with the SHA-256 its payload must hash to.

Resume (``--resume``) replays the journal: a cell whose key appears in
the journal *and* whose cached payload matches the journalled digest
is served without re-execution; everything else — including cells
whose cache entry rotted after the journal was written — is recomputed.
Because payloads are canonical JSON, a resumed sweep is byte-identical
to an uninterrupted one.

Torn tails are expected, not fatal: a record interrupted mid-write
(power loss between ``write`` and ``fsync``) leaves a final line that
does not parse; :meth:`SweepJournal.load` stops at the first such line
and the cell is simply recomputed.

Duplicate keys are tolerated the same way: a cell journalled twice —
a crash after the fsync but before the in-memory index updated, two
attempts racing a retry, or a journal resumed mid-append — yields two
intact records for one key.  The **last** record wins (it describes
the most recent completion) and the occurrence is counted in
:attr:`SweepJournal.duplicates` rather than treated as corruption.
Both degradations compose: a journal with duplicated entries *and* a
torn tail still loads every intact record before the tear.

Write failures are **permanent** (fsyncgate semantics): after any
failed append the journal marks itself :attr:`SweepJournal.broken`
and every later append raises
:class:`~repro.storage.layer.JournalWriteError` — a failed ``fsync``
may have dropped the dirty pages while marking them clean, so a retry
that "succeeds" proves nothing.  The runner degrades to unjournaled
execution (results stay correct, resume coverage is honestly reduced
and counted in the sweep stats) rather than trusting a lying journal.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.storage.layer import (
    JournalWriteError,
    ragged_tail as _ragged_tail,
    StorageHandle,
    StorageLayer,
    default_storage,
)


def payload_digest(payload: str) -> str:
    """SHA-256 hex digest of a canonical-JSON payload."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class JournalEntry:
    """One completed cell as recorded in the journal."""

    __slots__ = ("key", "digest", "length", "label")

    def __init__(self, key: str, digest: str, length: int, label: str = "") -> None:
        self.key = key
        self.digest = digest
        self.length = length
        self.label = label

    def matches(self, payload: str) -> bool:
        """Whether *payload* is byte-identical to the journalled one."""
        return len(payload) == self.length and payload_digest(payload) == self.digest

    def to_json(self) -> str:
        return json.dumps(
            {"v": 1, "key": self.key, "sha256": self.digest,
             "bytes": self.length, "label": self.label},
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalEntry":
        obj = json.loads(line)
        if obj.get("v") != 1:
            raise ValueError(f"unknown journal record version {obj.get('v')!r}")
        return cls(
            key=obj["key"], digest=obj["sha256"],
            length=int(obj["bytes"]), label=obj.get("label", ""),
        )


class SweepJournal:
    """Append-only JSONL journal of completed sweep cells.

    Parameters
    ----------
    path:
        Journal file.  Parent directories are created on first append.
    resume:
        ``True`` loads surviving records and appends after them;
        ``False`` (a fresh sweep) truncates any existing journal.
    storage:
        The :class:`~repro.storage.layer.StorageLayer` all IO goes
        through; defaults to the process-wide pass-through layer.
    """

    def __init__(self, path: os.PathLike, resume: bool = False,
                 storage: Optional[StorageLayer] = None) -> None:
        self.path = Path(path)
        self.resume = resume
        self.storage = storage if storage is not None else default_storage()
        self.entries: Dict[str, JournalEntry] = {}
        self.torn_tail = False
        #: intact records whose key had already appeared (last wins)
        self.duplicates = 0
        #: the failure that permanently closed this journal to writes
        self.broken: Optional[BaseException] = None
        if resume:
            self.entries = dict(self.load(self.path))
            if self.torn_tail or _ragged_tail(self.path):
                self._compact()
        elif self.path.exists():
            self.storage.unlink(self.path)
        self._handle: Optional[StorageHandle] = None

    def _compact(self) -> None:
        """Atomically rewrite the journal to end at a record boundary.

        Appending in ``ab`` mode after a torn tail would put every new
        record *behind* the unparseable line, where no future recovery
        can see it — and a tail missing only its newline would merge
        with the next record into garbage.  Resume therefore rewrites
        the intact records
        (crash-safely, via the temp-fsync-rename protocol) before the
        journal accepts appends.  If the rewrite itself fails the
        journal opens broken: its entries are still good for resume
        decisions, but writes are refused rather than silently
        unrecoverable.
        """
        payload = b"".join(
            entry.to_json().encode("utf-8") + b"\n"
            for entry in self.entries.values()
        )
        try:
            self.storage.write_atomic(
                self.path, payload, sync_file=True, sync_dir=True
            )
        except OSError as exc:
            self.broken = exc

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self, path: Path) -> Iterator[tuple]:
        """Yield ``(key, entry)`` for every intact record in *path*.

        Stops at the first line that fails to parse — by construction
        that can only be a torn tail (records are written atomically
        from the journal's point of view: single ``write`` + fsync).
        A key appearing more than once yields each occurrence in file
        order — consumed through ``dict()`` the **last** record wins —
        and bumps :attr:`duplicates`.
        """
        if not path.exists():
            return
        try:
            raw = path.read_bytes()
        except OSError:
            return
        seen = set()
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = JournalEntry.from_json(line.decode("utf-8"))
            except (ValueError, KeyError, UnicodeDecodeError):
                self.torn_tail = True
                break
            if entry.key in seen:
                self.duplicates += 1
            seen.add(entry.key)
            yield entry.key, entry

    def get(self, key: str) -> Optional[JournalEntry]:
        """The journalled entry for *key*, or ``None``."""
        return self.entries.get(key)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, key: str, payload: str, label: str = "") -> JournalEntry:
        """Durably record that *key* completed with *payload*.

        The record is written in one ``write`` call, flushed, and
        ``fsync``'d before this returns — after that, no crash of the
        parent can lose the fact that the cell finished.

        Raises
        ------
        JournalWriteError
            On the first IO failure and on every append after it
            (fsyncgate: the dirty pages may already be gone, so the
            journal breaks permanently instead of retrying).  The
            entry is *not* indexed as written.
        """
        if self.broken is not None:
            raise JournalWriteError(self.path, self.broken)
        entry = JournalEntry(
            key=key, digest=payload_digest(payload),
            length=len(payload), label=label,
        )
        try:
            if self._handle is None:
                self._handle = self.storage.open_append(self.path)
            self._handle.write(entry.to_json().encode("utf-8") + b"\n")
            self._handle.flush()
            self._handle.fsync()
        except OSError as exc:
            self.broken = exc
            raise JournalWriteError(self.path, exc) from exc
        self.entries[key] = entry
        return entry

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
