"""Supervised execution of sweep cells over a worker pool.

PR 2's :class:`~repro.parallel.runner.SweepRunner` fanned cells over a
``ProcessPoolExecutor`` and called ``future.result()`` — one crashed,
hung or SIGKILL'd worker aborted the whole sweep and threw away every
completed cell.  This module adds the supervision loop around that
pool:

* **per-cell timeouts** — a cell's clock starts when its future is
  first observed running; past the deadline the pool is torn down
  (hung workers killed), the cell charged a :class:`CellTimeout`, and
  the survivors resubmitted;
* **bounded retries** — crashes and timeouts are retried up to
  ``retries`` times with exponential backoff and deterministic jitter;
* **poison-cell quarantine** — a cell that exhausts its budget is
  quarantined and reported in ``SweepStats`` instead of sinking the
  sweep (strict mode raises :class:`PoisonCellError` instead);
* **pool-break attribution by isolation** — when a worker dies hard,
  ``BrokenProcessPool`` hits *every* in-flight future, so the harness
  cannot know which cell did it.  Cells that were running at the break
  become *suspects* and are re-run one at a time in a fresh pool:
  innocents exonerate themselves, the true poison cell keeps breaking
  its solitary pool until quarantined;
* **graceful degradation** — if a worker pool cannot be (re)built at
  all (unusable mp context, fork bombs out, EPERM on semaphores), the
  remaining cells run serially under the same retry/quarantine rules
  rather than failing the sweep.

The loop is deliberately single-threaded: all bookkeeping (stats,
cache, journal) happens in the parent between ``wait()`` calls, so no
lock ever guards sweep state.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.parallel.errors import (
    CellCrash,
    CellError,
    CellTimeout,
    PoisonCellError,
    WorkerLost,
)

#: poll interval while waiting for a submitted future to start running
#: (only relevant when a per-cell timeout is configured)
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the harness fights for each cell before giving up.

    Attributes
    ----------
    timeout:
        Per-cell wall-clock budget in seconds, measured from the first
        moment the cell is observed running in a worker.  ``None``
        disables deadlines (cells may run forever).  Timeouts are only
        enforceable on the pool path — a serial cell runs in the
        calling process and cannot be preempted.
    retries:
        How many times a failed cell is re-attempted; ``retries=2``
        means up to three attempts total before quarantine.
    backoff_base / backoff_cap:
        Exponential-backoff schedule between attempts:
        ``min(cap, base * 2**(attempt-1))`` scaled by a deterministic
        jitter factor in [0.5, 1.0) derived from the cell key, so two
        concurrent sweeps never thundering-herd in lockstep yet a
        given sweep remains reproducible.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    @property
    def max_attempts(self) -> int:
        """Total attempts before a cell is declared poison."""
        return self.retries + 1

    def backoff(self, key: str, attempt: int) -> float:
        """Delay before re-attempting *key* after *attempt* failures."""
        raw = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        jitter = 0.5 + (digest[0] / 256.0) * 0.5
        return raw * jitter


@dataclass
class CellFailure:
    """One quarantined cell, as reported in ``SweepStats.failures``."""

    key: str
    kind: str
    attempts: int
    detail: str


class _PoolBroken(Exception):
    """Internal: the pool must be torn down and rebuilt.

    ``blamed`` maps cell index -> the error charged to it (timeout, or
    worker-lost for cells running at a hard break); ``unfinished``
    lists indices to resubmit without charge.
    """

    def __init__(self, blamed: Dict[int, CellError], unfinished: List[int],
                 progressed: bool = False) -> None:
        super().__init__(f"pool broken ({len(blamed)} blamed)")
        self.blamed = blamed
        self.unfinished = unfinished
        #: whether any cell of the batch completed before the break
        self.progressed = progressed


class PoolSupervisor:
    """Drives one batch of pending cells to completion or quarantine.

    Parameters
    ----------
    cells:
        The full cell sequence (indexed by the pending indices).
    policy:
        Retry/timeout budgets.
    worker_fn:
        Module-level ``(index, fn, params) -> (index, payload)``
        callable submitted to the pool (picklable by reference).
    on_success:
        Callback ``(index, payload)`` invoked in the parent for every
        completed cell — the runner stores, caches and journals there.
    stats:
        Mutable stats object with ``retried``, ``quarantined``,
        ``degraded`` counters and a ``failures`` list.
    """

    def __init__(
        self,
        cells: Sequence[Any],
        policy: SupervisionPolicy,
        worker_fn: Callable[..., Any],
        on_success: Callable[[int, str], None],
        stats: Any,
        jobs: int,
        mp_context: Optional[Any] = None,
        strict: bool = False,
    ) -> None:
        self.cells = cells
        self.policy = policy
        self.worker_fn = worker_fn
        self.on_success = on_success
        self.stats = stats
        self.jobs = jobs
        self.mp_context = mp_context
        self.strict = strict
        self.pool: Optional[ProcessPoolExecutor] = None
        self.attempts: Dict[int, int] = {}
        self.last_error: Dict[int, CellError] = {}
        self.quarantined: List[int] = []

    # ------------------------------------------------------------------
    # top-level loop
    # ------------------------------------------------------------------
    def run(self, pending: Sequence[int]) -> List[int]:
        """Execute *pending* cells; returns the quarantined indices."""
        remaining = deque(pending)
        suspects: deque = deque()
        stalls = 0  # consecutive pool breaks with zero progress
        try:
            while remaining or suspects:
                degrade = stalls >= 2
                if not degrade and self.pool is None:
                    degrade = not self._build_pool(len(suspects) or len(remaining))
                if degrade:
                    # Pool unusable: degrade to supervised serial
                    # execution for everything still outstanding.
                    leftovers = list(suspects) + list(remaining)
                    suspects.clear()
                    remaining.clear()
                    self._run_degraded(leftovers)
                    break
                if suspects:
                    batch = [suspects.popleft()]  # isolation: one at a time
                else:
                    batch = list(remaining)
                    remaining.clear()
                try:
                    self._execute_batch(batch)
                    stalls = 0
                except _PoolBroken as broken:
                    self._teardown_pool(kill=True)
                    stalls = 0 if (broken.blamed or broken.progressed) else stalls + 1
                    for index, error in broken.blamed.items():
                        if not self._record_failure(index, error):
                            suspects.append(index)
                    for index in broken.unfinished:
                        remaining.append(index)
        finally:
            self._teardown_pool(kill=False)
        return self.quarantined

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _build_pool(self, batch_size: int) -> bool:
        workers = max(1, min(self.jobs, batch_size))
        try:
            self.pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=self.mp_context
            )
            return True
        except (OSError, ValueError, ImportError, RuntimeError) as exc:
            warnings.warn(
                f"worker pool unavailable ({type(exc).__name__}: {exc}); "
                "degrading to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.pool = None
            return False

    def _teardown_pool(self, kill: bool) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        if kill:
            # A hung or half-dead pool: SIGKILL the workers so their
            # cells actually stop consuming CPU, then abandon the
            # executor without waiting on it.
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # one batch over one pool
    # ------------------------------------------------------------------
    def _execute_batch(self, batch: Sequence[int]) -> None:
        assert self.pool is not None
        futures: Dict[Any, int] = {}
        started: Dict[int, float] = {}
        progressed = False
        for index in batch:
            if not self._submit(futures, index):
                # Submitted siblings die with the pool; resubmit all.
                raise _PoolBroken({}, list(batch), progressed=False)

        while futures:
            now = time.monotonic()  # repro: allow(DET102): hung-worker detection measures host wall-time by definition; simulated time never reaches the harness layer
            for future, index in futures.items():
                if index not in started and future.running():
                    started[index] = now
            done, _ = wait(
                set(futures),
                timeout=self._wait_timeout(futures, started, now),
                return_when=FIRST_COMPLETED,
            )
            broken_indices: List[int] = []
            for future in done:
                index = futures.pop(future)
                try:
                    _, payload = future.result()
                except BrokenProcessPool:
                    broken_indices.append(index)
                except Exception as exc:  # the cell itself crashed
                    started.pop(index, None)
                    if not self._record_failure(index, CellCrash(
                        self._key(index), exc, self.attempts.get(index, 0) + 1
                    )):
                        if not self._submit(futures, index):
                            # Already charged for the crash; resubmit
                            # on the next pool without further blame.
                            broken_indices.append(index)
                else:
                    self.on_success(index, payload)
                    progressed = True
            if broken_indices:
                raise self._broken(broken_indices, futures, started, progressed)
            self._check_deadlines(futures, started, progressed)

    def _submit(self, futures: Dict[Any, int], index: int) -> bool:
        cell = self.cells[index]
        try:
            future = self.pool.submit(
                self.worker_fn, index, cell.fn, dict(cell.params)
            )
        except (BrokenProcessPool, RuntimeError):
            return False
        futures[future] = index
        return True

    def _wait_timeout(
        self,
        futures: Dict[Any, int],
        started: Dict[int, float],
        now: float,
    ) -> Optional[float]:
        if self.policy.timeout is None:
            return None
        deadlines = [
            started[index] + self.policy.timeout
            for index in futures.values()
            if index in started
        ]
        if not deadlines:
            return _POLL_INTERVAL  # nothing running yet; poll for starts
        return max(0.0, min(deadlines) - now)

    def _check_deadlines(
        self,
        futures: Dict[Any, int],
        started: Dict[int, float],
        progressed: bool,
    ) -> None:
        if self.policy.timeout is None or not futures:
            return
        now = time.monotonic()  # repro: allow(DET102): per-cell timeout accounting is host wall-time; cells are pure functions so this cannot perturb results
        blamed: Dict[int, CellError] = {}
        unfinished: List[int] = []
        for future, index in futures.items():
            if (index in started
                    and now - started[index] >= self.policy.timeout
                    and not future.done()):
                blamed[index] = CellTimeout(
                    self._key(index), self.policy.timeout,
                    self.attempts.get(index, 0) + 1,
                )
            else:
                unfinished.append(index)
        if blamed:
            # A running future cannot be cancelled; the only way to
            # reclaim a hung worker is to kill the pool under it.
            raise _PoolBroken(blamed, unfinished, progressed)

    def _broken(
        self,
        broken_indices: List[int],
        futures: Dict[Any, int],
        started: Dict[int, float],
        progressed: bool,
    ) -> _PoolBroken:
        """Classify every outstanding cell after a hard pool break.

        Cells that were observed running are blamed (they *might* have
        killed the worker — isolation sorts the innocents out); cells
        still queued are resubmitted without charge.
        """
        blamed: Dict[int, CellError] = {}
        unfinished: List[int] = []
        for index in broken_indices + list(futures.values()):
            if index in started:
                blamed[index] = WorkerLost(
                    self._key(index), self.attempts.get(index, 0) + 1
                )
            else:
                unfinished.append(index)
        return _PoolBroken(blamed, unfinished, progressed)

    # ------------------------------------------------------------------
    # failure accounting (shared by pool and serial paths)
    # ------------------------------------------------------------------
    def _record_failure(self, index: int, error: CellError) -> bool:
        """Charge one failure; returns True when the cell is now poison."""
        count = self.attempts.get(index, 0) + 1
        self.attempts[index] = count
        self.last_error[index] = error
        if count >= self.policy.max_attempts:
            self._quarantine(index, count, error)
            return True
        self.stats.retried += 1
        time.sleep(self.policy.backoff(self._key(index), count))  # repro: allow(DET102): retry backoff is a real-time wait between attempts; the re-executed cell's output is unaffected
        return False

    def _quarantine(self, index: int, attempts: int, error: CellError) -> None:
        poison = PoisonCellError(self._key(index), attempts, error)
        if self.strict:
            raise poison
        self.quarantined.append(index)
        self.stats.quarantined += 1
        self.stats.failures.append(CellFailure(
            key=self._key(index), kind=error.kind,
            attempts=attempts, detail=error.message,
        ))

    def _key(self, index: int) -> str:
        return self.cells[index].key

    # ------------------------------------------------------------------
    # serial degradation
    # ------------------------------------------------------------------
    def _run_degraded(self, indices: Sequence[int]) -> None:
        from repro.parallel.runner import execute_cell

        self.stats.degraded += len(indices)
        run_serial_supervised(
            self.cells, indices, self.policy, execute_cell,
            self.on_success, self,
        )


def run_serial_supervised(
    cells: Sequence[Any],
    indices: Sequence[int],
    policy: SupervisionPolicy,
    execute: Callable[[str, Any], str],
    on_success: Callable[[int, str], None],
    supervisor: Optional[PoolSupervisor] = None,
    stats: Any = None,
    strict: bool = False,
) -> List[int]:
    """Run cells in-process under the same retry/quarantine rules.

    Used both by the serial (``jobs=1``) path of the runner and as the
    degraded path when no worker pool can be built.  Timeouts are not
    enforced here — a cell runs in the calling process and cannot be
    preempted — but crashes are retried and poison cells quarantined
    exactly as on the pool path.  Returns the quarantined indices.
    """
    if supervisor is None:
        supervisor = PoolSupervisor(
            cells, policy, worker_fn=None, on_success=on_success,
            stats=stats, jobs=1, strict=strict,
        )
    for index in indices:
        while True:
            try:
                payload = execute(cells[index].fn, cells[index].params)
            except Exception as exc:
                crash = CellCrash(
                    cells[index].key, exc,
                    supervisor.attempts.get(index, 0) + 1,
                )
                if supervisor._record_failure(index, crash):
                    break  # quarantined (or PoisonCellError raised in strict)
            else:
                on_success(index, payload)
                break
    return supervisor.quarantined
