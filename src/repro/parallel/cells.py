"""Module-level cell functions executed by :class:`SweepRunner` workers.

Each function is a pure map from plain, picklable parameters to a
JSON-serialisable record; the heavy imports happen inside the function
bodies so importing :mod:`repro.parallel` stays cheap and cycle-free.
Cells are addressed by dotted path (``"repro.parallel.cells:workload_cell"``)
rather than by callable, so they resolve identically under any
multiprocessing start method.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional


def workload_cell(
    policy: str,
    workload: str,
    load: float,
    config: Any = None,
    request_overrides: Optional[Mapping[str, int]] = None,
    checkpoint: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One (policy, workload, load) execution -> WorkloadResult record.

    *checkpoint* — a harness-injected spec (``path`` plus
    ``every_events``/``every_sim_seconds``) — turns on resume-or-fresh
    execution: if a matching snapshot exists at the path (left by an
    earlier attempt that was killed or timed out) the run continues
    from it, otherwise it starts fresh; either way it autosnapshots on
    the given cadence and deletes the snapshot once the record is
    complete.  The record is byte-identical with or without it.
    """
    out = _run_workload_resumable(
        policy, workload, load, config, request_overrides, checkpoint
    )
    return out.result.to_dict()


def _run_workload_resumable(
    policy: str,
    workload: str,
    load: float,
    config: Any,
    request_overrides: Optional[Mapping[str, int]],
    checkpoint: Optional[Mapping[str, Any]],
) -> Any:
    """Run one workload, resuming from its snapshot when one survives."""
    from repro.experiments.common import run_workload

    if not checkpoint:
        return run_workload(
            policy, workload, load, config, request_overrides=request_overrides
        )

    from pathlib import Path

    from repro.checkpoint import CheckpointError, CheckpointPlan

    path = Path(checkpoint["path"])
    plan = CheckpointPlan(
        path=path,
        every_events=checkpoint.get("every_events"),
        every_sim_seconds=checkpoint.get("every_sim_seconds"),
    )
    if path.exists():
        try:
            out = run_workload(
                policy, workload, load, config,
                request_overrides=request_overrides,
                checkpoint=plan, restore=path,
            )
        except CheckpointError:
            # Stale, corrupt or foreign snapshot: the resume shortcut
            # is void, recompute the cell from scratch.
            pass
        else:
            _discard_snapshot(path)
            return out
    out = run_workload(
        policy, workload, load, config,
        request_overrides=request_overrides, checkpoint=plan,
    )
    _discard_snapshot(path)
    return out


def _discard_snapshot(path: Any) -> None:
    """Drop a finished cell's snapshot (best-effort)."""
    try:
        path.unlink()
    except OSError:
        pass


def mpl_timeline_cell(
    workload: str,
    load: float,
    config: Any = None,
    policy: str = "PDPA",
) -> Dict[str, Any]:
    """The Fig. 8 record: the (time, MPL) series the policy decided."""
    from repro.experiments.common import run_workload
    from repro.metrics.paraver import mpl_timeline

    out = run_workload(policy, workload, load, config)
    return {
        "timeline": [[time, int(level)] for time, level in mpl_timeline(out.trace)]
    }


def traced_workload_cell(
    policy: str,
    workload: str,
    load: float,
    config: Any = None,
    request_overrides: Optional[Mapping[str, int]] = None,
    checkpoint: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """:func:`workload_cell` plus a digest of the full trace.

    The digest covers every record the tracer collects (bursts,
    reallocations, MPL samples, faults, migrations, synthetic loads and
    per-job timestamps), so two runs with equal digests executed
    byte-identically.  Used by the determinism guard and benchmarks.
    A restored run reproduces the digest too — the snapshot carries the
    trace accumulators along with everything else.
    """
    out = _run_workload_resumable(
        policy, workload, load, config, request_overrides, checkpoint
    )
    return {
        "result": out.result.to_dict(),
        "trace_digest": trace_digest(out),
    }


def trace_digest(out: Any) -> str:
    """SHA-256 over the run's full trace/stats serialization."""
    t = out.trace
    fingerprint = repr((
        tuple(t.bursts),
        tuple(t.reallocations),
        tuple(t.mpl_samples),
        tuple(t.faults),
        t.migrations,
        tuple(sorted(
            (cpu, load.bursts, load.busy_time)
            for cpu, load in t.synthetic.items()
        )),
        tuple(
            (r.job_id, r.submit_time, r.start_time, r.end_time)
            for r in out.result.records
        ),
    ))
    return hashlib.sha256(fingerprint.encode()).hexdigest()


def echo_cell(**params: Any) -> Dict[str, Any]:
    """Return the parameters unchanged (tests and plumbing checks)."""
    return dict(params)
