"""Module-level cell functions executed by :class:`SweepRunner` workers.

Each function is a pure map from plain, picklable parameters to a
JSON-serialisable record; the heavy imports happen inside the function
bodies so importing :mod:`repro.parallel` stays cheap and cycle-free.
Cells are addressed by dotted path (``"repro.parallel.cells:workload_cell"``)
rather than by callable, so they resolve identically under any
multiprocessing start method.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional


def workload_cell(
    policy: str,
    workload: str,
    load: float,
    config: Any = None,
    request_overrides: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """One (policy, workload, load) execution -> WorkloadResult record."""
    from repro.experiments.common import run_workload

    out = run_workload(
        policy, workload, load, config, request_overrides=request_overrides
    )
    return out.result.to_dict()


def mpl_timeline_cell(
    workload: str,
    load: float,
    config: Any = None,
    policy: str = "PDPA",
) -> Dict[str, Any]:
    """The Fig. 8 record: the (time, MPL) series the policy decided."""
    from repro.experiments.common import run_workload
    from repro.metrics.paraver import mpl_timeline

    out = run_workload(policy, workload, load, config)
    return {
        "timeline": [[time, int(level)] for time, level in mpl_timeline(out.trace)]
    }


def traced_workload_cell(
    policy: str,
    workload: str,
    load: float,
    config: Any = None,
    request_overrides: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """:func:`workload_cell` plus a digest of the full trace.

    The digest covers every record the tracer collects (bursts,
    reallocations, MPL samples, faults, migrations, synthetic loads and
    per-job timestamps), so two runs with equal digests executed
    byte-identically.  Used by the determinism guard and benchmarks.
    """
    from repro.experiments.common import run_workload

    out = run_workload(
        policy, workload, load, config, request_overrides=request_overrides
    )
    return {
        "result": out.result.to_dict(),
        "trace_digest": trace_digest(out),
    }


def trace_digest(out: Any) -> str:
    """SHA-256 over the run's full trace/stats serialization."""
    t = out.trace
    fingerprint = repr((
        tuple(t.bursts),
        tuple(t.reallocations),
        tuple(t.mpl_samples),
        tuple(t.faults),
        t.migrations,
        tuple(sorted(
            (cpu, load.bursts, load.busy_time)
            for cpu, load in t.synthetic.items()
        )),
        tuple(
            (r.job_id, r.submit_time, r.start_time, r.end_time)
            for r in out.result.records
        ),
    ))
    return hashlib.sha256(fingerprint.encode()).hexdigest()


def echo_cell(**params: Any) -> Dict[str, Any]:
    """Return the parameters unchanged (tests and plumbing checks)."""
    return dict(params)
