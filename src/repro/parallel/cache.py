"""Content-addressed on-disk result cache for sweep cells.

A cell's cache key is the SHA-256 of a canonical encoding of

* the **code version** — a digest over every ``repro`` source file, so
  any change to the simulator invalidates the whole cache;
* the cell's **function** (dotted ``module:attr`` path);
* the cell's **parameters**, canonicalised recursively (dataclasses by
  type + fields, enums by value, mappings with sorted keys).

Records are stored as canonical JSON (sorted keys, no whitespace), so a
cache hit returns byte-for-byte the same payload that a fresh run of
the same cell would produce — warm re-runs are both instant and
provably identical.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional


def canonical(value: Any) -> Any:
    """Reduce *value* to a deterministic JSON-encodable structure.

    Dataclasses carry their qualified type name so two config classes
    with identical fields still key differently; unknown objects fall
    back to ``repr`` (stable for this codebase's value types).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        cls = type(value)
        body["__type__"] = f"{cls.__module__}.{cls.__qualname__}"
        return body
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def canonical_dumps(value: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, repr floats."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Hashing the sources rather than a version string means a cache can
    never serve results computed by different simulator code.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def cell_key(fn: str, params: Any, code: Optional[str] = None) -> str:
    """Content-addressed cache key for one sweep cell."""
    payload = canonical_dumps({
        "code": code if code is not None else code_version(),
        "fn": fn,
        "params": params,
    })
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Filesystem cache mapping cell keys to canonical-JSON records.

    Layout: ``<root>/<key[:2]>/<key>.json``.  Writes go through a
    temporary file and :func:`os.replace`, so concurrent workers and
    interrupted runs can never leave a torn record behind.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where *key*'s record lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[str]:
        """The cached canonical-JSON payload, or ``None`` on a miss."""
        try:
            return self.path_for(key).read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None

    def put(self, key: str, payload: str) -> None:
        """Atomically store *payload* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
