"""Content-addressed on-disk result cache for sweep cells.

A cell's cache key is the SHA-256 of a canonical encoding of

* the **code version** — a digest over every ``repro`` source file, so
  any change to the simulator invalidates the whole cache;
* the cell's **function** (dotted ``module:attr`` path);
* the cell's **parameters**, canonicalised recursively (dataclasses by
  type + fields, enums by value, mappings with sorted keys).

Records are stored as canonical JSON (sorted keys, no whitespace), so a
cache hit returns byte-for-byte the same payload that a fresh run of
the same cell would produce — warm re-runs are both instant and
provably identical.

Integrity
---------
Disk is not trusted.  Every record is stored with a header naming its
length and SHA-256; :meth:`ResultCache.get` verifies both before
serving a single byte.  An entry that fails the check — truncated,
bit-flipped, or hand-edited — is **quarantined** (renamed to
``*.corrupt``) and reported as a miss, so the cell is transparently
recomputed rather than poisoning downstream artefacts or crashing the
sweep.  Real I/O errors (``EACCES`` and friends) are logged once and
likewise degrade to misses instead of aborting.  The *write* path is
symmetric: a store that fails (``ENOSPC``, quota, permissions) is
logged once, counted in :meth:`ResultCache.stats`, and skipped — a
full disk costs cache hits, never the sweep cell.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.storage.layer import StorageLayer, default_storage

logger = logging.getLogger(__name__)

#: header magic for integrity-checked cache records
_MAGIC = "repro-cache-v2"


class UnserialisableValue(ValueError):
    """Strict canonicalisation met a value only ``repr`` could encode."""

    def __init__(self, path: str, value: Any) -> None:
        super().__init__(
            f"value at {path} is not canonically serialisable: "
            f"{type(value).__name__} ({value!r})"
        )
        self.path = path
        self.value = value


def canonical(value: Any, strict: bool = False, _path: str = "$") -> Any:
    """Reduce *value* to a deterministic JSON-encodable structure.

    Dataclasses carry their qualified type name so two config classes
    with identical fields still key differently; unknown objects fall
    back to ``repr`` (stable for this codebase's value types).  The
    fallback is fine for *hashing* cache keys but lossy for *payloads*
    — ``strict=True`` raises :class:`UnserialisableValue` instead, so
    an undecodable record is never silently cached.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: canonical(getattr(value, f.name), strict, f"{_path}.{f.name}")
            for f in dataclasses.fields(value)
        }
        cls = type(value)
        body["__type__"] = f"{cls.__module__}.{cls.__qualname__}"
        return body
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, dict):
        return {
            str(k): canonical(v, strict, f"{_path}.{k}") for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [
            canonical(v, strict, f"{_path}[{i}]") for i, v in enumerate(value)
        ]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if strict:
        raise UnserialisableValue(_path, value)
    return {"__repr__": repr(value)}


def canonical_dumps(value: Any, strict: bool = False) -> str:
    """Canonical JSON: sorted keys, minimal separators, repr floats."""
    return json.dumps(
        canonical(value, strict=strict), sort_keys=True, separators=(",", ":")
    )


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Hashing the sources rather than a version string means a cache can
    never serve results computed by different simulator code.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def cell_key(fn: str, params: Any, code: Optional[str] = None) -> str:
    """Content-addressed cache key for one sweep cell."""
    payload = canonical_dumps({
        "code": code if code is not None else code_version(),
        "fn": fn,
        "params": params,
    })
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Filesystem cache mapping cell keys to canonical-JSON records.

    Layout: ``<root>/<key[:2]>/<key>.rec``.  A record is one header
    line (magic, payload SHA-256, payload length) followed by the raw
    payload.  Writes go through a temporary file and
    :func:`os.replace`, so concurrent workers and interrupted runs can
    never leave a torn record behind — and if anything *else* tears
    one (disk corruption, manual edits), :meth:`get` catches it.
    """

    def __init__(self, root: os.PathLike,
                 storage: Optional[StorageLayer] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.storage = storage if storage is not None else default_storage()
        #: corrupt entries detected (and quarantined) by this instance
        self.corrupt_detected = 0
        #: non-ENOENT I/O errors swallowed as misses by this instance
        self.io_errors = 0
        #: failed stores (ENOSPC and friends) skipped by this instance
        self.store_errors = 0
        self._io_error_logged = False
        self._store_error_logged = False

    def path_for(self, key: str) -> Path:
        """Where *key*'s record lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.rec"

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        """The cached payload, integrity-verified, or ``None`` on a miss.

        Corrupt entries are quarantined (renamed ``*.corrupt``) and
        treated as misses; unreadable entries (permissions, transient
        I/O) are logged once and treated as misses.
        """
        path = self.path_for(key)
        try:
            blob = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.io_errors += 1
            if not self._io_error_logged:
                self._io_error_logged = True
                logger.warning(
                    "result cache read failed (%s: %s) — treating as a miss; "
                    "further I/O errors on this cache will be counted silently",
                    type(exc).__name__, exc,
                )
            return None
        payload = self._verify(key, blob)
        if payload is None:
            self._quarantine(path)
        return payload

    def _verify(self, key: str, blob: str) -> Optional[str]:
        """Check header magic, key, length and digest; payload or ``None``.

        The header names the key the record was written under, so an
        entry spliced in from another cell — internally consistent,
        wrong content — is caught too, not just bit rot.
        """
        header, sep, payload = blob.partition("\n")
        fields = header.split(" ")
        if not sep or len(fields) != 4 or fields[0] != _MAGIC:
            return None
        try:
            owner = fields[1].split("=", 1)[1]
            digest = fields[2].split("=", 1)[1]
            length = int(fields[3].split("=", 1)[1])
        except (IndexError, ValueError):
            return None
        if owner != key or len(payload) != length:
            return None
        if hashlib.sha256(payload.encode("utf-8")).hexdigest() != digest:
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        self.corrupt_detected += 1
        logger.warning(
            "corrupt cache entry %s quarantined; the cell will be recomputed",
            path.name,
        )
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            # Even the rename failing must not break the sweep; the
            # entry stays in place and keeps reading as a miss.
            pass

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: str, payload: str) -> bool:
        """Atomically store *payload* (with integrity header) under *key*.

        Returns whether the record was stored.  A failing store —
        ``ENOSPC``, quota, permissions — is handled exactly like a
        failing read: logged once, counted (:attr:`store_errors`),
        and degraded to "not cached".  The caller's cell result is
        never at risk; only future cache hits are.

        Deliberately *not* fsynced: a torn record after a crash is
        caught by the integrity header and quarantined on read, so
        the cache trades durability for write latency safely.
        """
        path = self.path_for(key)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        header = f"{_MAGIC} key={key} sha256={digest} bytes={len(payload)}\n"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self.storage.write_atomic(
                path, header.encode("utf-8"), payload.encode("utf-8"),
                sync_file=False, sync_dir=False,
            )
        except OSError as exc:
            self.store_errors += 1
            if not self._store_error_logged:
                self._store_error_logged = True
                logger.warning(
                    "result cache store failed (%s: %s) — entry skipped; "
                    "further store errors on this cache will be counted "
                    "silently",
                    type(exc).__name__, exc,
                )
            return False
        return True

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Entry/byte counts plus corruption and I/O error counters."""
        entries = 0
        total_bytes = 0
        quarantined = 0
        for path in sorted(self.root.glob("*/*")):
            if path.suffix == ".rec" and not path.name.startswith(".tmp-"):
                entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
            elif path.suffix == ".corrupt":
                quarantined += 1
        return {
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "corrupt_detected": self.corrupt_detected,
            "io_errors": self.io_errors,
            "store_errors": self.store_errors,
        }

    def prune(self) -> int:
        """Remove quarantined, temporary and legacy files; returns count.

        Legacy here means pre-integrity ``*.json`` records: they carry
        no checksum, and their keys can never match again anyway (the
        code version moved), so they are dead weight.
        """
        removed = 0
        for path in sorted(self.root.glob("*/*")):
            stale = (
                path.suffix in (".corrupt", ".json")
                or path.name.startswith(".tmp-")
            )
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return sum(
            1 for p in self.root.glob("*/*.rec") if not p.name.startswith(".tmp-")
        )
