"""Typed failure taxonomy for the sweep harness.

The simulator's *simulated* faults live in :mod:`repro.faults`; this
module classifies faults of the **harness itself** — workers that
crash, hang or are killed, cache entries whose bytes rotted on disk,
and cells whose records cannot be canonicalised.  Every class carries
the cell's human-readable ``key`` and the number of ``attempts`` spent
on it, so supervision reports read like an incident log rather than a
bare traceback.

Hierarchy::

    CellError
    ├── CellCrash            worker raised an exception
    ├── CellTimeout          cell exceeded its per-cell deadline
    ├── WorkerLost           the process pool broke under the cell
    ├── CorruptResult        cached payload failed its integrity check
    ├── UnserialisableRecord cell record fell into the repr() fallback
    └── PoisonCellError      cell exhausted its retry budget

:class:`PoisonCellError` is also what strict mode raises; in the
default (non-strict) mode poison cells are quarantined and reported in
:class:`~repro.parallel.runner.SweepStats` instead.
"""

from __future__ import annotations

from typing import Optional, Sequence


class CellError(Exception):
    """Base class for harness-level sweep-cell failures."""

    #: short machine-readable failure kind (stable across messages)
    kind: str = "error"

    def __init__(self, key: str, message: str, attempts: int = 1) -> None:
        super().__init__(f"cell {key!r}: {message}")
        self.key = key
        self.message = message
        self.attempts = attempts


class CellCrash(CellError):
    """The cell function raised inside a worker (or serially)."""

    kind = "crash"

    def __init__(self, key: str, cause: BaseException, attempts: int = 1) -> None:
        super().__init__(
            key,
            f"crashed with {type(cause).__name__}: {cause}",
            attempts=attempts,
        )
        self.cause = cause


class CellTimeout(CellError):
    """The cell ran longer than the supervision policy allows."""

    kind = "timeout"

    def __init__(self, key: str, timeout: float, attempts: int = 1) -> None:
        super().__init__(
            key, f"exceeded per-cell timeout of {timeout:g}s", attempts=attempts
        )
        self.timeout = timeout


class WorkerLost(CellError):
    """The process pool broke while the cell was in flight.

    Raised (or recorded) when a worker dies hard — SIGKILL, OOM kill,
    interpreter abort — which surfaces as ``BrokenProcessPool`` on
    every in-flight future.  Attribution is by isolation: suspects are
    re-run one at a time, so only the cell that actually kills its
    worker keeps accumulating these.
    """

    kind = "worker-lost"

    def __init__(self, key: str, attempts: int = 1,
                 detail: str = "process pool broke while cell was running") -> None:
        super().__init__(key, detail, attempts=attempts)


class CorruptResult(CellError):
    """A cached or journalled payload failed its integrity check."""

    kind = "corrupt-result"

    def __init__(self, key: str, detail: str, attempts: int = 1) -> None:
        super().__init__(key, f"corrupt result: {detail}", attempts=attempts)


class UnserialisableRecord(CellError):
    """A cell record could not be canonicalised losslessly.

    :func:`repro.parallel.cache.canonical` maps unknown objects to a
    ``{"__repr__": ...}`` marker, which is fine for *hashing* cache
    keys but silently lossy for *payloads*: the record could never be
    decoded back.  ``execute_cell`` therefore refuses to cache such a
    record and raises this instead.
    """

    kind = "unserialisable"

    def __init__(self, key: str, paths: Sequence[str]) -> None:
        super().__init__(
            key,
            "record is not canonical JSON (repr fallback at "
            + ", ".join(paths) + ")",
        )
        self.paths = tuple(paths)


class PoisonCellError(CellError):
    """A cell exhausted its retry budget and was quarantined.

    In strict mode this propagates out of :meth:`SweepRunner.run`;
    otherwise it is recorded in ``SweepStats.failures`` and the sweep
    carries on without the cell.
    """

    kind = "poison"

    def __init__(self, key: str, attempts: int,
                 last_error: Optional[CellError] = None) -> None:
        detail = f"failed {attempts} attempt(s)"
        if last_error is not None:
            detail += f"; last failure: {last_error.kind} ({last_error.message})"
        super().__init__(key, detail, attempts=attempts)
        self.last_error = last_error
