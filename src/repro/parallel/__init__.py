"""Parallel sweep execution with deterministic results and caching.

Public surface:

* :class:`~repro.parallel.runner.SweepRunner` — process-pool executor
  with a byte-identical serial fallback and ordered result collection;
* :class:`~repro.parallel.runner.SweepCell` — one unit of sweep work;
* :class:`~repro.parallel.cache.ResultCache` — content-addressed
  on-disk cache keyed by config + code version;
* :func:`~repro.parallel.runner.derive_seed` — stable per-cell seeds.

Cell functions themselves live in :mod:`repro.parallel.cells` and are
resolved lazily by dotted path, keeping this package import-cycle-free
with :mod:`repro.experiments`.
"""

from repro.parallel.cache import ResultCache, canonical_dumps, cell_key, code_version
from repro.parallel.runner import (
    SweepCell,
    SweepRunner,
    SweepStats,
    derive_seed,
    execute_cell,
    resolve_cell_fn,
)

__all__ = [
    "ResultCache",
    "SweepCell",
    "SweepRunner",
    "SweepStats",
    "canonical_dumps",
    "cell_key",
    "code_version",
    "derive_seed",
    "execute_cell",
    "resolve_cell_fn",
]
