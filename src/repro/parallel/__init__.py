"""Parallel sweep execution with supervision, caching and journalling.

Public surface:

* :class:`~repro.parallel.runner.SweepRunner` — process-pool executor
  with a byte-identical serial fallback and ordered result collection;
* :class:`~repro.parallel.runner.SweepCell` — one unit of sweep work;
* :class:`~repro.parallel.supervisor.SupervisionPolicy` — per-cell
  timeouts, bounded retries with backoff, poison-cell quarantine;
* :class:`~repro.parallel.journal.SweepJournal` — fsync'd write-ahead
  journal of completed cells, enabling ``--resume``;
* :class:`~repro.parallel.runner.SweepCheckpointPolicy` — autosnapshot
  cadence for checkpointable cells, so retried cells resume from their
  last snapshot instead of recomputing;
* :class:`~repro.parallel.cache.ResultCache` — content-addressed
  on-disk cache keyed by config + code version, integrity-checked;
* :mod:`~repro.parallel.errors` — the :class:`CellError` taxonomy for
  harness faults (crash / timeout / worker-lost / corrupt / poison);
* :func:`~repro.parallel.runner.derive_seed` — stable per-cell seeds.

Cell functions themselves live in :mod:`repro.parallel.cells` and are
resolved lazily by dotted path, keeping this package import-cycle-free
with :mod:`repro.experiments`.
"""

from repro.parallel.cache import (
    ResultCache,
    UnserialisableValue,
    canonical_dumps,
    cell_key,
    code_version,
)
from repro.parallel.errors import (
    CellCrash,
    CellError,
    CellTimeout,
    CorruptResult,
    PoisonCellError,
    UnserialisableRecord,
    WorkerLost,
)
from repro.parallel.journal import SweepJournal, payload_digest
from repro.parallel.runner import (
    SweepCell,
    SweepCheckpointPolicy,
    SweepRunner,
    SweepStats,
    derive_seed,
    execute_cell,
    resolve_cell_fn,
)
from repro.parallel.supervisor import CellFailure, SupervisionPolicy

__all__ = [
    "CellCrash",
    "CellError",
    "CellFailure",
    "CellTimeout",
    "CorruptResult",
    "PoisonCellError",
    "ResultCache",
    "SupervisionPolicy",
    "SweepCell",
    "SweepCheckpointPolicy",
    "SweepJournal",
    "SweepRunner",
    "SweepStats",
    "UnserialisableRecord",
    "UnserialisableValue",
    "WorkerLost",
    "canonical_dumps",
    "cell_key",
    "code_version",
    "derive_seed",
    "execute_cell",
    "payload_digest",
    "resolve_cell_fn",
]
