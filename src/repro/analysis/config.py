"""Configuration of the determinism sanitizer.

The linter is configured from the ``[tool.repro.analysis]`` table of
``pyproject.toml``:

.. code-block:: toml

    [tool.repro.analysis]
    # rule IDs to run (empty/absent = all registered rules)
    select = []
    # rule IDs to skip
    ignore = []
    # path fragments where sim-scoped rules apply
    sim-paths = ["repro/sim/", "repro/core/"]
    # files allowed to read wall clocks (DET101/DET102)
    wallclock-allow = ["repro/experiments/clock.py"]
    # path fragments never linted
    exclude = []

Paths are matched as substrings of the file's posix path, so the
configuration survives repository moves and works from any working
directory.  ``tomllib`` is used when available (Python >= 3.11); on
older interpreters a deliberately tiny TOML-subset reader handles the
one table the sanitizer needs (string and string-array values), so the
linter stays dependency-free on every supported Python.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Path fragments (posix) of the simulation layer: modules whose state
#: or output feeds simulated results, where sim-scoped rules apply.
DEFAULT_SIM_PATHS: Tuple[str, ...] = (
    "repro/sim/",
    "repro/core/",
    "repro/machine/",
    "repro/qs/",
    "repro/rm/",
    "repro/runtime/",
    "repro/faults/",
    "repro/apps/",
    "repro/metrics/",
    "repro/cluster/",
)

#: The one sanctioned wall-clock site (see repro/experiments/clock.py).
DEFAULT_WALLCLOCK_ALLOW: Tuple[str, ...] = ("repro/experiments/clock.py",)


@dataclass(frozen=True)
class AnalysisConfig:
    """Resolved sanitizer configuration.

    Attributes mirror the ``[tool.repro.analysis]`` keys; tuples keep
    the config hashable and accidental mutation impossible.
    """

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    sim_paths: Tuple[str, ...] = DEFAULT_SIM_PATHS
    wallclock_allow: Tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOW
    exclude: Tuple[str, ...] = ()
    #: where the config was read from (None = built-in defaults)
    source: Optional[str] = field(default=None, compare=False)

    def is_sim_path(self, posix_path: str) -> bool:
        """Whether sim-scoped rules apply to this file."""
        return any(fragment in posix_path for fragment in self.sim_paths)

    def is_wallclock_allowed(self, posix_path: str) -> bool:
        """Whether this file may read wall/monotonic clocks."""
        return any(fragment in posix_path for fragment in self.wallclock_allow)

    def is_excluded(self, posix_path: str) -> bool:
        """Whether this file is skipped entirely."""
        return any(fragment in posix_path for fragment in self.exclude)

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether a rule participates under select/ignore."""
        if rule_id in self.ignore:
            return False
        return not self.select or rule_id in self.select


_TABLE_HEADER = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*(?:#.*)?$")
_KEY_VALUE = re.compile(r"^\s*(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.*)$")
_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"|\'([^\']*)\'')


def _parse_minitoml_table(text: str, table: str) -> Dict[str, object]:
    """Extract one table from TOML text without a TOML parser.

    Understands exactly what ``[tool.repro.analysis]`` needs: string
    values and (possibly multi-line) arrays of strings.  Anything more
    exotic in *other* tables is ignored, not an error.
    """
    values: Dict[str, object] = {}
    in_table = False
    pending_key: Optional[str] = None
    pending_items: List[str] = []

    def strings_in(fragment: str) -> List[str]:
        return [a if a else b for a, b in _STRING.findall(fragment)]

    for raw_line in text.splitlines():
        line = raw_line.strip()
        header = _TABLE_HEADER.match(raw_line)
        if header and pending_key is None:
            in_table = header.group("name").strip() == table
            continue
        if not in_table or not line or line.startswith("#"):
            continue
        if pending_key is not None:
            pending_items.extend(strings_in(line))
            if "]" in line.split("#")[0]:
                values[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        matched = _KEY_VALUE.match(raw_line)
        if not matched:
            continue
        key = matched.group("key")
        value = matched.group("value").split("#")[0].strip()
        if value.startswith("["):
            items = strings_in(value)
            if "]" in value:
                values[key] = items
            else:
                pending_key, pending_items = key, items
        else:
            parts = strings_in(value)
            values[key] = parts[0] if parts else value
    return values


def read_table(pyproject: Path, table: str) -> Dict[str, object]:
    """The raw mapping of one dotted TOML table from *pyproject*.

    Sub-tables of the requested table are dropped (values are strings
    and string arrays only), matching what the mini-TOML fallback can
    represent, so both parse paths agree.
    """
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:
        return _parse_minitoml_table(text, table)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return {}
    node: object = data
    for part in table.split("."):
        node = node.get(part, {}) if isinstance(node, dict) else {}
    if not isinstance(node, dict):
        return {}
    return {key: value for key, value in node.items() if not isinstance(value, dict)}


def _read_analysis_table(pyproject: Path) -> Dict[str, object]:
    """The raw ``[tool.repro.analysis]`` mapping from *pyproject*."""
    return read_table(pyproject, "tool.repro.analysis")


def find_pyproject(start: Union[str, Path]) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above *start*."""
    path = Path(start).resolve()
    if path.is_file():
        path = path.parent
    for candidate in [path, *path.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Union[str, Path] = ".") -> AnalysisConfig:
    """Resolve the sanitizer config for files under *start*.

    Walks upward from *start* to the nearest ``pyproject.toml``;
    missing file or missing table mean built-in defaults.
    """
    pyproject = find_pyproject(start)
    if pyproject is None:
        return AnalysisConfig()
    table = _read_analysis_table(pyproject)
    config = AnalysisConfig(source=str(pyproject))

    def str_tuple(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = table.get(key)
        if value is None:
            return default
        if isinstance(value, str):
            return (value,)
        return tuple(str(item) for item in value)

    return replace(
        config,
        select=str_tuple("select", ()),
        ignore=str_tuple("ignore", ()),
        sim_paths=str_tuple("sim-paths", DEFAULT_SIM_PATHS),
        wallclock_allow=str_tuple("wallclock-allow", DEFAULT_WALLCLOCK_ALLOW),
        exclude=str_tuple("exclude", ()),
    )
