"""Findings: what the determinism sanitizer reports.

Both layers of the sanitizer — the static AST linter and the runtime
event-race detector — reduce their observations to flat, sortable
records so that output is stable across runs, machines and Python
versions.  A :class:`Finding` is one static-lint diagnostic; the
runtime analogue lives in :mod:`repro.analysis.race`.

Ordering is part of the contract: findings sort by ``(path, line,
rule, column)`` so that ``repro lint --format json`` diffs cleanly in
CI no matter what order files were walked or rules were run in.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence, Tuple

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    Attributes
    ----------
    path:
        File the finding is in, as given to the linter (posix form).
    line, column:
        1-based line and 0-based column of the offending node.
    rule:
        Rule ID, e.g. ``DET103``.
    severity:
        One of :data:`SEVERITIES`.
    message:
        What is wrong, concretely (mentions the offending call/name).
    hint:
        How to fix it (the rule's fix hint).
    """

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str
    hint: str

    def sort_key(self) -> Tuple[str, int, str, int]:
        """The canonical output order: (path, line, rule, column)."""
        return (self.path, self.line, self.rule, self.column)

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in canonical (path, line, rule, column) order."""
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: Sequence[Finding], verbose: bool = True) -> str:
    """Human-readable report, one finding per line plus a summary."""
    ordered = sort_findings(findings)
    lines = [f.render() for f in ordered]
    if verbose:
        for i, finding in enumerate(ordered):
            lines[i] += f"\n    hint: {finding.hint}"
    errors = sum(1 for f in ordered if f.severity == "error")
    warnings = sum(1 for f in ordered if f.severity == "warning")
    lines.append(
        f"{len(ordered)} finding(s): {errors} error(s), {warnings} warning(s)"
        if ordered else "clean: no determinism hazards found"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: a JSON array in canonical order.

    The array is sorted by (path, line, rule, column) and keys are
    sorted inside each object, so CI diffs of the output are stable.
    """
    payload = [asdict(f) for f in sort_findings(findings)]
    return json.dumps(payload, sort_keys=True, indent=2)
