"""repro.analysis — the determinism sanitizer.

Two layers guard the repo's core contract (byte-identical output
across serial, parallel and resumed execution):

* **Static** — :mod:`repro.analysis.linter` walks source ASTs for
  determinism hazards (wall-clock reads, unseeded RNG, set-order
  iteration, float time equality, unstable sort keys, mutable
  defaults, directory-order enumeration, environment reads) with a
  configurable rule catalogue and justified inline suppressions.
  Exposed as ``repro lint``.
* **Runtime** — :mod:`repro.analysis.race` observes the DES engine for
  same-timestamp event cohorts whose order is decided only by
  insertion sequence — the discrete-event analogue of a data race.
  Exposed as ``--sanitize`` on experiment commands.

See ``docs/static-analysis.md`` for the rule catalogue and how the
sanitizer relates to the byte-identity and chaos suites.
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.findings import Finding, render_json, render_text, sort_findings
from repro.analysis.linter import Linter, lint_paths
from repro.analysis.race import RaceDetector, RaceFinding, RaceStats
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisConfig",
    "Finding",
    "Linter",
    "RaceDetector",
    "RaceFinding",
    "RaceStats",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
    "sort_findings",
]
