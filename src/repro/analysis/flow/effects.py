"""Per-function effect inference with interprocedural propagation.

For every project function this pass computes which module globals it
reads and writes, which ``self`` attributes and parameters it mutates,
and which ambient effects (RNG draws, clock reads, file/console I/O,
environment reads, subprocess spawns) it performs — first locally from
the AST, then transitively through the resolved call graph to a
fixpoint.  A light escape analysis also records where module-level
mutable objects leak out of their defining module (returned, passed to
a call, or stored onto an object), which is what the LP-boundary rules
and the effect manifest consume.

Globals are identified as ``"module.name:NAME"`` strings so they sort
deterministically and survive JSON round-trips.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.rules.base import attr_chain
from repro.analysis.rules.randomness import ENTROPY_ORIGINS, GLOBAL_RANDOM_FNS
from repro.analysis.rules.wallclock import MONOTONIC_ORIGINS, WALLCLOCK_ORIGINS

from repro.analysis.flow.project import FunctionInfo, ModuleInfo, Project

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "rotate", "setdefault", "sort", "update",
})

_CLOCK_DOTTED = frozenset(".".join(t) for t in WALLCLOCK_ORIGINS)
_MONO_DOTTED = frozenset(".".join(t) for t in MONOTONIC_ORIGINS)
_ENTROPY_DOTTED = frozenset(".".join(t) for t in ENTROPY_ORIGINS)


def classify_source(origin: str, has_args: bool) -> Optional[str]:
    """Nondeterminism kind of a resolved call origin, if any.

    Returns ``"wallclock"``, ``"monotonic"``, ``"rng"`` or ``None``.
    Matches the syntactic rules' origin tables: ``random.*`` global
    draws, unseeded ``random.Random()``, ``numpy.random``, entropy
    sources, and the clock families.
    """
    if origin in _CLOCK_DOTTED:
        return "wallclock"
    if origin in _MONO_DOTTED:
        return "monotonic"
    parts = origin.split(".")
    if len(parts) >= 2 and parts[0] == "random" and parts[-1] in GLOBAL_RANDOM_FNS:
        return "rng"
    if origin == "random.Random" and not has_args:
        return "rng"
    if parts[:2] == ["numpy", "random"]:
        return "rng"
    if origin in _ENTROPY_DOTTED or parts[0] == "secrets":
        return "rng"
    return None


_PROCESS_ORIGINS = frozenset({
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "os.system", "os.popen", "os.spawnv", "os.fork",
})
_ENV_ORIGINS = frozenset({"os.environ", "os.getenv", "os.environb"})
_WRITE_MODES = ("w", "a", "x", "+")


def global_key(module: str, name: str) -> str:
    """Stable identifier for a module-level binding."""
    return f"{module}:{name}"


@dataclass
class FunctionEffects:
    """Everything a function does to the world, transitively."""

    global_reads: Set[str] = field(default_factory=set)
    global_writes: Set[str] = field(default_factory=set)
    #: names of ``self`` attributes whose value is assigned or mutated
    self_writes: Set[str] = field(default_factory=set)
    #: names of parameters whose referent is mutated
    param_writes: Set[str] = field(default_factory=set)
    #: {"rng", "wallclock", "monotonic", "file-read", "file-write",
    #:  "stdout", "env", "process"}
    ambient: Set[str] = field(default_factory=set)

    def mutates_shared_state(self) -> bool:
        """Whether calling this function can change caller-visible state."""
        return bool(self.global_writes or self.self_writes or self.param_writes)

    def snapshot(self) -> Tuple[FrozenSet[str], ...]:
        return (
            frozenset(self.global_reads),
            frozenset(self.global_writes),
            frozenset(self.self_writes),
            frozenset(self.param_writes),
            frozenset(self.ambient),
        )


@dataclass
class CallSite:
    """One resolved call edge, with enough shape to map effects back."""

    callee: str
    line: int
    col: int
    #: attribute chain of the receiver (``("self", "machine")`` for
    #: ``self.machine.resize(...)``), or None for plain calls
    receiver: Optional[Tuple[str, ...]]
    #: positional argument base names (None for non-trivial expressions)
    arg_names: Tuple[Optional[str], ...]


@dataclass
class EscapeInfo:
    """Where a module-level mutable object leaks out of its module."""

    key: str
    #: sorted qnames of functions that let it escape
    via: Set[str] = field(default_factory=set)


class _EffectWalker(ast.NodeVisitor):
    """Single-function local pass: direct effects plus call sites."""

    def __init__(self, project: Project, module: ModuleInfo, fn: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.effects = FunctionEffects()
        self.calls: List[CallSite] = []
        self.escapes: Set[str] = set()
        self.global_decls: Set[str] = set()
        self.local_names: Set[str] = set(fn.params)
        #: local variable -> class qname, from annotations/constructors
        self.local_types: Dict[str, str] = {}
        for param, names in fn.param_annotations.items():
            for type_name in names:
                resolved = project.resolve_class_name(module, type_name)
                if resolved is not None:
                    self.local_types[param] = resolved
                    break

    # -- name classification -------------------------------------------
    def _collect_locals(self, node: ast.AST) -> None:
        for inner in ast.walk(node):
            if isinstance(inner, (ast.Global, ast.Nonlocal)):
                self.global_decls.update(inner.names)
            elif isinstance(inner, ast.Name) and isinstance(
                inner.ctx, (ast.Store, ast.Del)
            ):
                self.local_names.add(inner.id)
            elif isinstance(inner, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(inner.target):
                    if isinstance(name_node, ast.Name):
                        self.local_names.add(name_node.id)
        self.local_names -= self.global_decls

    def _is_module_global(self, name: str) -> bool:
        if name in self.global_decls:
            return True
        return name in self.module.globals and name not in self.local_names

    def _cross_global(self, chain: Tuple[str, ...]) -> Optional[str]:
        """Another project module's global referenced through an import.

        Covers both idioms: ``import lp_machine`` + ``lp_machine.EVENTS``
        (chain ``("lp_machine", "EVENTS")``) and ``from lp_machine
        import EVENTS`` + ``EVENTS`` (chain ``("EVENTS",)``).
        """
        if not chain or chain[0] not in self.module.imports:
            return None
        origin = self.module.imports[chain[0]] + tuple(chain[1:])
        target, rest = self.project.module_of_origin(origin)
        if target is None or len(rest) != 1:
            return None
        if rest[0] in self.project.modules[target].globals:
            return global_key(target, rest[0])
        return None

    def _classify_write(self, base: ast.expr) -> None:
        """Record a mutation of whatever object *base* names."""
        chain = attr_chain(base)
        if not chain:
            return
        head = chain[0]
        if head == "self" and self.fn.is_method:
            if len(chain) >= 2:
                self.effects.self_writes.add(chain[1])
            else:
                self.effects.param_writes.add("self")
            return
        cross = self._cross_global(tuple(chain[:2]))
        if cross is not None:
            self.effects.global_writes.add(cross)
            return
        if self._is_module_global(head):
            self.effects.global_writes.add(global_key(self.module.name, head))
        elif head in self.fn.params:
            self.effects.param_writes.add(head)

    # -- visitors ------------------------------------------------------
    def run(self) -> None:
        body = self.fn.node.body
        for stmt in body:
            self._collect_locals(stmt)
        for stmt in body:
            self.visit(stmt)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_target(target)
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            chain = attr_chain(node.value.func)
            if chain:
                resolved = self.project.resolve_class_name(self.module, chain[-1])
                if resolved is not None:
                    self.local_types[node.targets[0].id] = resolved
        self._note_escape_expr(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_target(node.target)
        if node.value is not None:
            self._note_escape_expr(node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_target(node.target)
        if isinstance(node.target, ast.Name) and self._is_module_global(node.target.id):
            self.effects.global_reads.add(global_key(self.module.name, node.target.id))
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_target(target)
        self.generic_visit(node)

    def _visit_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.effects.global_writes.add(
                    global_key(self.module.name, target.id)
                )
            # track constructor-typed locals for call resolution
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element)
            return
        if isinstance(target, ast.Subscript):
            self._classify_write(target.value)
            return
        if isinstance(target, ast.Attribute):
            self._classify_write(target)
            return
        if isinstance(target, ast.Starred):
            self._visit_target(target.value)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if self._is_module_global(node.id):
                self.effects.global_reads.add(
                    global_key(self.module.name, node.id)
                )
            else:
                cross = self._cross_global((node.id,))
                if cross is not None:
                    self.effects.global_reads.add(cross)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = attr_chain(node)
        if chain and isinstance(node.ctx, ast.Load):
            cross = self._cross_global(tuple(chain[:2]))
            if cross is not None:
                self.effects.global_reads.add(cross)
            if ".".join(chain) in _ENV_ORIGINS or (
                chain[0] in self.module.imports
                and ".".join(self.module.imports[chain[0]] + tuple(chain[1:]))
                in _ENV_ORIGINS
            ):
                self.effects.ambient.add("env")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._note_escape_expr(node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        origin = self._origin_of(chain)
        self._ambient_call(chain, origin, node)
        if chain and len(chain) >= 2 and chain[-1] in MUTATOR_METHODS:
            base = node.func
            assert isinstance(base, ast.Attribute)
            self._classify_write(base.value)
        self._record_call(node, chain)
        for arg in node.args:
            self._note_escape_expr(arg)
        for keyword in node.keywords:
            self._note_escape_expr(keyword.value)
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------
    def _origin_of(self, chain: List[str]) -> str:
        if not chain:
            return ""
        if chain[0] in self.module.imports:
            return ".".join(self.module.imports[chain[0]] + tuple(chain[1:]))
        return ".".join(chain)

    def _ambient_call(self, chain: List[str], origin: str, node: ast.Call) -> None:
        effects = self.effects.ambient
        source = classify_source(origin, has_args=bool(node.args or node.keywords))
        if source is not None:
            effects.add(source)
        elif origin in _PROCESS_ORIGINS:
            effects.add("process")
        elif origin in _ENV_ORIGINS:
            effects.add("env")
        elif origin == "print":
            effects.add("stdout")
        elif origin in ("open", "io.open", "pathlib.Path.open"):
            effects.add(self._open_mode_effect(node))
        elif chain and chain[-1] in ("read_text", "read_bytes"):
            effects.add("file-read")
        elif chain and chain[-1] in ("write_text", "write_bytes"):
            effects.add("file-write")

    @staticmethod
    def _open_mode_effect(node: ast.Call) -> str:
        mode: Optional[str] = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            if isinstance(node.args[1].value, str):
                mode = node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    mode = keyword.value.value
        if mode is not None and any(flag in mode for flag in _WRITE_MODES):
            return "file-write"
        return "file-read"

    def _record_call(self, node: ast.Call, chain: List[str]) -> None:
        callees = self.project.resolve_call(self.fn, node, self.local_types)
        if not callees:
            return
        receiver: Optional[Tuple[str, ...]] = None
        if len(chain) >= 2:
            receiver = tuple(chain[:-1])
        arg_names = tuple(
            arg.id if isinstance(arg, ast.Name) else None for arg in node.args
        )
        for callee in callees:
            self.calls.append(
                CallSite(
                    callee=callee,
                    line=node.lineno,
                    col=node.col_offset,
                    receiver=receiver,
                    arg_names=arg_names,
                )
            )

    def _note_escape_expr(self, node: ast.expr) -> None:
        """Module-global mutable objects flowing out via this expression."""
        chain = attr_chain(node)
        if not chain:
            return
        head = chain[0]
        if self._is_module_global(head):
            info = self.module.globals.get(head)
            if info is not None and info.mutable:
                self.escapes.add(global_key(self.module.name, head))


@dataclass
class EffectAnalysis:
    """Project-wide effect results."""

    project: Project
    #: transitively propagated effects, per function qname
    effects: Dict[str, FunctionEffects]
    #: local-only effects, before call-graph propagation
    direct: Dict[str, FunctionEffects]
    calls: Dict[str, List[CallSite]]
    escapes: Dict[str, EscapeInfo]

    def effects_of(self, qname: str) -> FunctionEffects:
        return self.effects.get(qname, FunctionEffects())


def analyze_effects(project: Project) -> EffectAnalysis:
    """Run the local pass everywhere, then propagate to a fixpoint."""
    effects: Dict[str, FunctionEffects] = {}
    calls: Dict[str, List[CallSite]] = {}
    escapes: Dict[str, EscapeInfo] = {}
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        module = project.modules[fn.module]
        walker = _EffectWalker(project, module, fn)
        walker.run()
        effects[qname] = walker.effects
        calls[qname] = walker.calls
        for key in sorted(walker.escapes):
            escapes.setdefault(key, EscapeInfo(key=key)).via.add(qname)
    direct = {
        qname: FunctionEffects(
            global_reads=set(fx.global_reads),
            global_writes=set(fx.global_writes),
            self_writes=set(fx.self_writes),
            param_writes=set(fx.param_writes),
            ambient=set(fx.ambient),
        )
        for qname, fx in effects.items()
    }
    _propagate(project, effects, calls)
    return EffectAnalysis(
        project=project, effects=effects, direct=direct, calls=calls, escapes=escapes
    )


def _propagate(
    project: Project,
    effects: Dict[str, FunctionEffects],
    calls: Dict[str, List[CallSite]],
) -> None:
    """Push callee effects into callers until nothing changes."""
    for _ in range(30):
        changed = False
        for qname in sorted(effects):
            own = effects[qname]
            before = own.snapshot()
            fn = project.functions[qname]
            for site in calls[qname]:
                callee_fx = effects.get(site.callee)
                if callee_fx is None:
                    continue
                own.global_reads |= callee_fx.global_reads
                own.global_writes |= callee_fx.global_writes
                own.ambient |= callee_fx.ambient
                _map_mutations(fn, site, callee_fx, own, project)
            if own.snapshot() != before:
                changed = True
        if not changed:
            return


def _map_mutations(
    fn: FunctionInfo,
    site: CallSite,
    callee_fx: FunctionEffects,
    own: FunctionEffects,
    project: Project,
) -> None:
    """Translate a callee's self/param mutations into the caller's frame."""
    callee = project.functions.get(site.callee)
    if callee is None:
        return
    # receiver mutation: callee touching its `self` touches our receiver
    if callee.is_method and site.receiver is not None and (
        callee_fx.self_writes or "self" in callee_fx.param_writes
    ):
        head = site.receiver[0]
        if head == "self" and fn.is_method:
            if len(site.receiver) == 1:
                own.self_writes |= callee_fx.self_writes
            else:
                own.self_writes.add(site.receiver[1])
        elif head in fn.params:
            own.param_writes.add(head)
    # positional-argument mutation
    offset = 1 if callee.is_method else 0
    for index, arg_name in enumerate(site.arg_names):
        if arg_name is None:
            continue
        position = offset + index
        if position >= len(callee.params):
            break
        if callee.params[position] not in callee_fx.param_writes:
            continue
        if arg_name == "self" and fn.is_method:
            own.param_writes.add("self")
        elif arg_name in fn.params:
            own.param_writes.add(arg_name)
        elif arg_name in project.modules[fn.module].globals:
            own.global_writes.add(global_key(fn.module, arg_name))
