"""Driver for the flow tier: ``repro lint --deep``.

Runs the project loader, the effect and taint analyses, and the
boundary rules over a set of paths, then applies the exact same
config/suppression machinery as the syntactic linter so one
``# repro: allow(DET204): why`` comment silences either tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.linter import Linter, Suppression, is_suppressed, parse_suppressions

from repro.analysis.flow.boundary import (
    BoundaryConfig,
    check_boundaries,
    load_boundaries,
)
from repro.analysis.flow.effects import EffectAnalysis, analyze_effects
from repro.analysis.flow.manifest import build_manifest, render_manifest
from repro.analysis.flow.project import Project
from repro.analysis.flow.taint import analyze_taint


@dataclass
class FlowReport:
    """Everything the deep pass produced."""

    findings: List[Finding]
    analysis: EffectAnalysis
    boundaries: BoundaryConfig
    #: findings that were silenced by inline suppressions (for audits)
    suppressed: List[Finding] = field(default_factory=list)

    def manifest_text(self) -> str:
        """The byte-stable effect manifest for this analysis."""
        return render_manifest(build_manifest(self.analysis, self.boundaries))


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    config: Optional[AnalysisConfig] = None,
    boundaries: Optional[BoundaryConfig] = None,
) -> FlowReport:
    """Run the flow tier over *paths* (flow findings only)."""
    anchor = paths[0] if paths else "."
    if config is None:
        config = load_config(anchor)
    if boundaries is None:
        boundaries = load_boundaries(anchor)
    project = Project.load(paths, config)
    analysis = analyze_effects(project)
    taint = analyze_taint(project)
    raw = taint.findings + check_boundaries(analysis, boundaries)

    by_posix = {
        module.posix: module for module in project.modules.values()
    }
    suppression_cache: Dict[str, Dict[int, Suppression]] = {}
    kept: List[Finding] = []
    silenced: List[Finding] = []
    seen = set()
    for finding in sort_findings(raw):
        identity = (
            finding.path, finding.line, finding.column, finding.rule,
            finding.message,
        )
        if identity in seen:
            continue
        seen.add(identity)
        if not config.rule_enabled(finding.rule):
            continue
        if finding.path not in suppression_cache:
            module = by_posix.get(finding.path)
            text = module.text if module is not None else ""
            suppression_cache[finding.path], _ = parse_suppressions(
                text, finding.path
            )
        if is_suppressed(suppression_cache[finding.path], finding.line, finding.rule):
            silenced.append(finding)
            continue
        kept.append(finding)
    return FlowReport(
        findings=kept,
        analysis=analysis,
        boundaries=boundaries,
        suppressed=silenced,
    )


def deep_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[AnalysisConfig] = None,
    boundaries: Optional[BoundaryConfig] = None,
) -> List[Finding]:
    """Syntactic + flow findings for *paths*, in canonical order."""
    anchor = paths[0] if paths else "."
    if config is None:
        config = load_config(anchor)
    syntactic = Linter(config).lint_paths(paths)
    flow = analyze_paths(paths, config=config, boundaries=boundaries)
    return sort_findings(syntactic + flow.findings)
