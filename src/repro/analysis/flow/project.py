"""Project model for the interprocedural flow analyzer.

The syntactic linter judges one file at a time; the flow layer needs
the *whole* project: which modules exist, which functions and classes
they define, what every module-level name is, and — the hard part —
which project function a call expression lands in.  This module builds
that model from source text alone (nothing is imported, same contract
as the linter) and resolves calls through four mechanisms, tried in
order:

1. **Imports** — ``from repro.sim.engine import Simulator`` makes
   ``Simulator(...)`` resolve to ``repro.sim.engine.Simulator.__init__``.
2. **Annotations** — a parameter ``sim: Simulator`` types the local
   ``sim``, so ``sim.schedule_at(...)`` resolves into that class.
3. **Attribute types** — ``self.sim = sim`` in ``__init__`` (with
   ``sim`` annotated) types the attribute, so ``self.sim.run()``
   resolves from any method.
4. **Unique method names** — a method name defined by exactly one
   project class resolves there, unless it collides with a common
   builtin-container method (``append``, ``update``, …), which would
   make ``some_list.append`` a false edge.

Everything is deterministic: modules, classes and functions are held
in sorted dictionaries and every list the model hands out is sorted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules.base import attr_chain, build_import_map

#: Method names that belong to builtin containers/streams: a call like
#: ``items.append(x)`` must never resolve to a project class that
#: happens to define a method of the same name.
AMBIENT_METHODS = frozenset({
    "add", "append", "clear", "close", "copy", "count", "discard",
    "extend", "get", "index", "insert", "items", "join", "keys", "pop",
    "popitem", "read", "readline", "readlines", "remove", "reverse",
    "setdefault", "sort", "split", "strip", "update", "values",
    "write", "writelines",
})

#: Expressions that build a mutable container at module level.
_MUTABLE_BUILDERS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})


def _annotation_names(node: Optional[ast.AST]) -> Tuple[str, ...]:
    """Bare identifiers mentioned anywhere in an annotation.

    ``Dict[int, NthLibRuntime]`` yields ``("Dict", "int",
    "NthLibRuntime")`` — the project-class filter happens later, at
    resolution time.
    """
    if node is None:
        return ()
    names: List[str] = []
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            names.append(inner.id)
        elif isinstance(inner, ast.Attribute):
            names.append(inner.attr)
        elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            # string annotation: re-parse it ("Simulator" forward refs)
            try:
                names.extend(_annotation_names(ast.parse(inner.value, mode="eval").body))
            except SyntaxError:
                pass
    return tuple(names)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    module: str
    #: enclosing class qname, or None for module-level functions
    cls: Optional[str]
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    #: parameter names in order, including ``self`` for methods
    params: Tuple[str, ...]
    #: parameter name -> annotation identifiers (for local typing)
    param_annotations: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition and what the analyzer knows about it."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    #: base-class identifiers as written (resolved lazily via project)
    base_names: Tuple[str, ...]
    #: method name -> function qname
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> candidate class-name identifiers (unresolved)
    attr_type_names: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    has_getstate: bool = False


@dataclass
class GlobalInfo:
    """One module-level binding."""

    name: str
    module: str
    line: int
    #: whether the bound value is a mutable container expression
    mutable: bool


@dataclass
class ModuleInfo:
    """One parsed module plus its top-level inventory."""

    name: str
    path: Path
    posix: str
    text: str
    tree: ast.Module
    imports: Dict[str, Tuple[str, ...]]
    is_sim: bool
    functions: Dict[str, str] = field(default_factory=dict)  # name -> qname
    classes: Dict[str, str] = field(default_factory=dict)  # name -> qname
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)


def _is_mutable_builder(node: ast.AST) -> bool:
    """Whether an expression builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_BUILDERS
    return False


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, walking up through packages.

    ``src/repro/qs/queuing.py`` (with ``__init__.py`` all the way up to
    ``src/repro``) becomes ``repro.qs.queuing``; a file outside any
    package is just its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(parts)


class Project:
    """The parsed project: modules, definitions, and call resolution."""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> sorted list of defining class qnames
        self.methods_by_name: Dict[str, List[str]] = {}
        #: resolution bookkeeping for the manifest's honesty stats
        self.resolved_calls = 0
        self.unresolved_calls = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        paths: Sequence[Union[str, Path]],
        config: Optional[AnalysisConfig] = None,
    ) -> "Project":
        """Parse every Python file under *paths* into one project.

        Directories are walked recursively in sorted order; files are
        taken as-is.  Files that fail to parse are skipped here — the
        syntactic pass reports them as DET000.
        """
        config = config or AnalysisConfig()
        project = cls(config)
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        for file_path in files:
            if config.is_excluded(file_path.as_posix()):
                continue
            project._add_file(file_path)
        project._index()
        return project

    def _add_file(self, path: Path) -> None:
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            return
        name = module_name_for(path)
        posix = path.as_posix()
        module = ModuleInfo(
            name=name,
            path=path,
            posix=posix,
            text=text,
            tree=tree,
            imports=build_import_map(tree),
            is_sim=self.config.is_sim_path(posix),
        )
        self.modules[name] = module
        self._harvest(module)

    def _harvest(self, module: ModuleInfo) -> None:
        """Collect top-level functions, classes and globals."""
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, node, cls=None)
                module.functions[node.name] = info.qname
                self.functions[info.qname] = info
            elif isinstance(node, ast.ClassDef):
                self._harvest_class(module, node)
            else:
                self._harvest_global(module, node)

    def _harvest_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qname=qname,
            module=module.name,
            name=node.name,
            node=node,
            base_names=tuple(
                ".".join(attr_chain(base)) for base in node.bases
                if attr_chain(base)
            ),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(module, item, cls=qname)
                info.methods[item.name] = fn.qname
                self.functions[fn.qname] = fn
                if item.name == "__getstate__":
                    info.has_getstate = True
        info.attr_type_names = _infer_attr_types(node)
        self.classes[qname] = info
        module.classes[node.name] = qname

    def _function_info(
        self,
        module: ModuleInfo,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        cls: Optional[str],
    ) -> FunctionInfo:
        prefix = cls if cls is not None else module.name
        args = node.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        params = tuple(a.arg for a in ordered)
        annotations = {
            a.arg: _annotation_names(a.annotation)
            for a in ordered if a.annotation is not None
        }
        return FunctionInfo(
            qname=f"{prefix}.{node.name}",
            module=module.name,
            cls=cls,
            name=node.name,
            node=node,
            params=params,
            param_annotations=annotations,
        )

    def _harvest_global(self, module: ModuleInfo, node: ast.stmt) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                module.globals[target.id] = GlobalInfo(
                    name=target.id,
                    module=module.name,
                    line=node.lineno,
                    mutable=value is not None and _is_mutable_builder(value),
                )

    def _index(self) -> None:
        by_name: Dict[str, List[str]] = {}
        for qname in sorted(self.classes):
            info = self.classes[qname]
            for method in info.methods:
                by_name.setdefault(method, []).append(qname)
        self.methods_by_name = {k: sorted(v) for k, v in sorted(by_name.items())}

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def module_of_origin(self, origin: Tuple[str, ...]) -> Tuple[Optional[str], Tuple[str, ...]]:
        """Split a dotted origin into (project module, object path).

        The longest prefix naming a loaded module wins:
        ``("repro", "sim", "engine", "Simulator")`` splits into
        ``("repro.sim.engine", ("Simulator",))``.
        """
        for cut in range(len(origin), 0, -1):
            name = ".".join(origin[:cut])
            if name in self.modules:
                return name, origin[cut:]
        return None, origin

    def resolve_class_name(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """Class qname for a bare identifier as seen from *module*."""
        if name in module.classes:
            return module.classes[name]
        if name in module.imports:
            target, rest = self.module_of_origin(module.imports[name])
            if target is not None:
                candidate = ".".join([target, *rest])
                if candidate in self.classes:
                    return candidate
        return None

    def mro(self, class_qname: str) -> List[str]:
        """Project-internal linearisation: the class then its bases."""
        seen: List[str] = []
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            info = self.classes[current]
            module = self.modules.get(info.module)
            if module is None:
                continue
            for base_name in info.base_names:
                resolved = self.resolve_class_name(module, base_name.split(".")[-1])
                if resolved is None and base_name in self.classes:
                    resolved = base_name
                if resolved is not None:
                    stack.append(resolved)
        return seen

    def lookup_method(self, class_qname: str, method: str) -> Optional[str]:
        """Function qname of *method* along the project MRO."""
        for cls in self.mro(class_qname):
            info = self.classes[cls]
            if method in info.methods:
                return info.methods[method]
        return None

    def attr_types(self, class_qname: str, attr: str) -> List[str]:
        """Candidate class qnames for ``self.<attr>`` in *class_qname*."""
        out: List[str] = []
        for cls in self.mro(class_qname):
            info = self.classes[cls]
            module = self.modules.get(info.module)
            if module is None:
                continue
            for type_name in info.attr_type_names.get(attr, ()):
                resolved = self.resolve_class_name(module, type_name)
                if resolved is not None and resolved not in out:
                    out.append(resolved)
        return sorted(out)

    def constructor_of(self, class_qname: str) -> Optional[str]:
        """``__init__`` qname reachable from *class_qname*, if any."""
        return self.lookup_method(class_qname, "__init__")

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        local_types: Mapping[str, str],
    ) -> List[str]:
        """Candidate project-function qnames for a call expression.

        *local_types* maps local variable names to class qnames (from
        annotations and constructor assignments, built by the caller's
        analysis walk).  Returns a sorted list; empty means the call
        leaves the project (stdlib, builtins, dynamic dispatch).
        """
        module = self.modules[caller.module]
        func = call.func
        candidates = self._resolve_candidates(caller, module, func, local_types)
        if candidates:
            self.resolved_calls += 1
        else:
            self.unresolved_calls += 1
        return sorted(set(candidates))

    def _resolve_candidates(
        self,
        caller: FunctionInfo,
        module: ModuleInfo,
        func: ast.AST,
        local_types: Mapping[str, str],
    ) -> List[str]:
        chain = attr_chain(func)
        if not chain:
            return []
        head = chain[0]

        # self.method() / self.attr.method()
        if head == "self" and caller.cls is not None:
            if len(chain) == 2:
                found = self.lookup_method(caller.cls, chain[1])
                return [found] if found else self._by_unique_name(chain[1])
            if len(chain) == 3:
                out: List[str] = []
                for cls in self.attr_types(caller.cls, chain[1]):
                    found = self.lookup_method(cls, chain[2])
                    if found is not None:
                        out.append(found)
                return out or self._by_unique_name(chain[-1])
            return self._by_unique_name(chain[-1])

        # typed local: sim.schedule_at() with sim: Simulator
        if head in local_types and len(chain) == 2:
            found = self.lookup_method(local_types[head], chain[1])
            return [found] if found else self._by_unique_name(chain[1])

        # imported or module-local names
        origin = module.imports.get(head, (head,)) + chain[1:]
        target_module, rest = self.module_of_origin(origin)
        if target_module is not None:
            target = self.modules[target_module]
            if len(rest) == 1:
                if rest[0] in target.functions:
                    return [target.functions[rest[0]]]
                if rest[0] in target.classes:
                    ctor = self.constructor_of(target.classes[rest[0]])
                    return [ctor] if ctor else []
            elif len(rest) == 2 and rest[0] in target.classes:
                found = self.lookup_method(target.classes[rest[0]], rest[1])
                return [found] if found else []
            return []

        # bare name defined in this module (not shadowed by a param)
        if len(chain) == 1 and head not in caller.params:
            if head in module.functions:
                return [module.functions[head]]
            if head in module.classes:
                ctor = self.constructor_of(module.classes[head])
                return [ctor] if ctor else []
            return []

        # attribute call on an untyped receiver: unique-name fallback
        if len(chain) >= 2:
            return self._by_unique_name(chain[-1])
        return []

    def _by_unique_name(self, method: str) -> List[str]:
        """Resolve by method name when exactly one project class defines it."""
        if method in AMBIENT_METHODS or method.startswith("__"):
            return []
        owners = self.methods_by_name.get(method, [])
        if len(owners) != 1:
            return []
        found = self.lookup_method(owners[0], method)
        return [found] if found else []


def _infer_attr_types(node: ast.ClassDef) -> Dict[str, Tuple[str, ...]]:
    """``self.<attr>`` type-name candidates from a class body.

    Sources, in every method: ``self.x: T = ...`` annotations,
    ``self.x = SomeClass(...)`` constructor calls, and ``self.x = p``
    where ``p`` is an annotated parameter of the enclosing method.
    """
    out: Dict[str, List[str]] = {}

    def note(attr: str, names: Tuple[str, ...]) -> None:
        bucket = out.setdefault(attr, [])
        for name in names:
            if name not in bucket:
                bucket.append(name)

    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            note(item.target.id, _annotation_names(item.annotation))
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        annotations = {
            a.arg: a.annotation
            for a in [*item.args.posonlyargs, *item.args.args, *item.args.kwonlyargs]
            if a.annotation is not None
        }
        for stmt in ast.walk(item):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    note(target.attr, _annotation_names(stmt.annotation))
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            if isinstance(value, ast.Call):
                chain = attr_chain(value.func)
                if chain:
                    note(target.attr, (chain[-1],))
            elif isinstance(value, ast.Name) and value.id in annotations:
                note(target.attr, _annotation_names(annotations[value.id]))
            elif isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
                # self.x = param or Default() — both arms contribute
                for arm in value.values:
                    if isinstance(arm, ast.Call):
                        chain = attr_chain(arm.func)
                        if chain:
                            note(target.attr, (chain[-1],))
                    elif isinstance(arm, ast.Name) and arm.id in annotations:
                        note(target.attr, _annotation_names(annotations[arm.id]))
    return {attr: tuple(names) for attr, names in sorted(out.items())}
