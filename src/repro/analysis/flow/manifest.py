"""The committed effect manifest: one JSON snapshot of the coupling.

``repro lint --deep --update-manifest`` regenerates
``effects-manifest.json`` at the repository root; CI regenerates it
again and fails on ``git diff``, so any PR that adds a new ambient
effect, a new mutable module global, or a new cross-boundary mutation
has to show that change in review as a manifest diff.

Determinism is the whole point: modules, functions and effect sets are
emitted in sorted order with sorted keys, so the same source tree
produces byte-identical output on every machine and Python version.
Volatile inputs (absolute paths, timestamps) are excluded by
construction — modules are keyed by dotted name, never by path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.flow.boundary import BoundaryConfig
from repro.analysis.flow.effects import EffectAnalysis

#: Bumped when the manifest shape changes incompatibly.
MANIFEST_FORMAT = 1


def build_manifest(
    analysis: EffectAnalysis, boundaries: Optional[BoundaryConfig] = None
) -> Dict[str, object]:
    """Reduce the effect analysis to its committed JSON form."""
    project = analysis.project
    modules: Dict[str, Dict[str, object]] = {}

    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        entry: Dict[str, object] = {}

        ambient: Dict[str, List[str]] = {}
        for fn_name in sorted(project.functions):
            fn = project.functions[fn_name]
            if fn.module != module_name:
                continue
            direct = analysis.direct.get(fn_name)
            if direct is not None and direct.ambient:
                ambient[fn_name] = sorted(direct.ambient)
        if ambient:
            entry["ambient"] = ambient

        global_entries: Dict[str, Dict[str, object]] = {}
        for global_name in sorted(module.globals):
            info = module.globals[global_name]
            key = f"{module_name}:{global_name}"
            writers = sorted(
                fn_name
                for fn_name in analysis.direct
                if key in analysis.direct[fn_name].global_writes
            )
            escapes = analysis.escapes.get(key)
            if not info.mutable and not writers and escapes is None:
                continue
            record: Dict[str, object] = {"mutable": info.mutable}
            if writers:
                record["writers"] = writers
            if escapes is not None:
                record["escapes_via"] = sorted(escapes.via)
            global_entries[global_name] = record
        if global_entries:
            entry["globals"] = global_entries

        if entry:
            modules[module_name] = entry

    data: Dict[str, object] = {
        "format": MANIFEST_FORMAT,
        "modules": modules,
        "stats": {
            "functions": len(project.functions),
            "modules": len(project.modules),
            "resolved_calls": project.resolved_calls,
            "unresolved_calls": project.unresolved_calls,
        },
    }
    if boundaries is not None and boundaries:
        data["boundaries"] = {
            "sides": {side: list(prefixes) for side, prefixes in boundaries.sides},
            "channels": [
                f"{caller} -> {callee}" for caller, callee in boundaries.channels
            ],
            "session_roots": list(boundaries.session_roots),
        }
        data["cross_boundary"] = _cross_boundary_edges(analysis, boundaries)
    return data


def _cross_boundary_edges(
    analysis: EffectAnalysis, boundaries: BoundaryConfig
) -> List[Dict[str, object]]:
    """Every mutating call edge that crosses the cut, channel or not."""
    project = analysis.project
    edges: List[Dict[str, object]] = []
    seen = set()
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        caller_side = boundaries.side_of(fn.module)
        if caller_side is None:
            continue
        for site in analysis.calls.get(qname, []):
            callee = project.functions.get(site.callee)
            if callee is None:
                continue
            callee_side = boundaries.side_of(callee.module)
            if callee_side is None or callee_side == caller_side:
                continue
            if not analysis.effects_of(site.callee).mutates_shared_state():
                continue
            key = (qname, site.callee)
            if key in seen:
                continue
            seen.add(key)
            edges.append({
                "caller": qname,
                "callee": site.callee,
                "channel": boundaries.is_channel(fn.module, site.callee),
                "direction": f"{caller_side}->{callee_side}",
            })
    return edges


def render_manifest(data: Dict[str, object]) -> str:
    """Byte-stable JSON text (sorted keys, trailing newline)."""
    return json.dumps(data, sort_keys=True, indent=2) + "\n"
