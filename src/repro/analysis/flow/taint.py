"""Flow-sensitive taint tracking for nondeterminism sources.

The syntactic DET1xx rules flag nondeterminism *at the call site*:
``time.time()`` in a sort key, iterating a ``set``.  This engine
instead tracks where those values actually *go* — through assignments,
containers, returns, and project-internal calls — and only reports
when a tainted value reaches a sink that affects observable output:

========  =============================================================
DET201    taint (wallclock / RNG / ``id()``) reaches a sort key
DET202    taint reaches a persisted artifact (``json.dump``,
          ``pickle``, ``handle.write``)
DET203    taint stored into object state (``self.attr = ...``) in a
          sim-path module — it will persist into checkpoint envelopes
DET204    taint reaches an event time or priority
          (``schedule_at`` / ``schedule_after``)
DET205    a set-iteration-ordered sequence escapes (returned/yielded)
          without being sorted — the flow-sensitive DET105
========  =============================================================

Taint kinds are ``wallclock``, ``rng``, ``ident`` (``id()``/``hash()``)
and ``order`` (sequences whose order came from set iteration).  Each
function is summarised by which taints it returns and which parameters
flow into sinks; summaries are iterated to a fixpoint so taint crosses
function boundaries, and sanitizers (``sorted``, ``.sort()``,
``min``/``max``/``len``/``sum``, set constructors) kill ``order`` taint
exactly where the syntactic rule could not see it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import attr_chain

from repro.analysis.flow.catalog import FLOW_RULE_INFO
from repro.analysis.flow.effects import classify_source
from repro.analysis.flow.project import FunctionInfo, ModuleInfo, Project

#: Consumers whose result does not depend on input ordering.
_ORDER_KILLERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})
#: Set methods whose result is again a set.
_SET_COMBINATORS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
#: Serialisation entry points whose first argument gets persisted.
_PERSIST_CALLS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps",
    "marshal.dump", "marshal.dumps",
})
#: Concrete (non-parameter) taint kinds.
_CONCRETE = frozenset({"wallclock", "monotonic", "rng", "ident", "order"})
#: Kinds that make a *value* nondeterministic (order only affects
#: sequences, which sorting neutralises — so sort keys ignore it).
_VALUE_KINDS = frozenset({"wallclock", "monotonic", "rng", "ident"})

_KIND_LABEL = {
    "wallclock": "wall-clock time",
    "monotonic": "monotonic-clock time",
    "rng": "unseeded RNG output",
    "ident": "id()/hash() value",
    "order": "set-iteration order",
}


@dataclass(frozen=True, order=True)
class Taint:
    """One taint mark: a concrete kind, or a parameter pseudo-taint."""

    kind: str  # one of _CONCRETE, or "param"
    detail: str  # source line for concrete kinds, parameter name for "param"

    @property
    def concrete(self) -> bool:
        return self.kind in _CONCRETE


@dataclass(frozen=True, order=True)
class ParamSink:
    """A summary fact: values passed via *param* reach a sink."""

    param: str
    rule: str
    kinds: FrozenSet[str]
    label: str


@dataclass(frozen=True)
class TaintSummary:
    """What a function does with taint, as seen by its callers."""

    returns: FrozenSet[Taint] = frozenset()
    sinks: FrozenSet[ParamSink] = frozenset()


def _kinds(taints: Set[Taint]) -> Set[str]:
    return {t.kind for t in taints if t.concrete}


def _describe(taints: Set[Taint], kinds: FrozenSet[str]) -> str:
    parts = sorted(
        f"{_KIND_LABEL[t.kind]} (line {t.detail})"
        for t in taints
        if t.concrete and t.kind in kinds
    )
    return ", ".join(parts)


class _TaintWalker:
    """Single-function taint interpretation in statement order."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        fn: FunctionInfo,
        summaries: Dict[str, TaintSummary],
        record: bool,
    ) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.summaries = summaries
        self.record = record
        self.state: Dict[str, Set[Taint]] = {
            p: {Taint("param", p)} for p in fn.params
        }
        self.setlike: Set[str] = set()
        self.returns: Set[Taint] = set()
        self.sinks: Set[ParamSink] = set()
        self.findings: List[Finding] = []
        self.local_types: Dict[str, str] = {}
        for param, names in fn.param_annotations.items():
            for type_name in names:
                resolved = project.resolve_class_name(module, type_name)
                if resolved is not None:
                    self.local_types[param] = resolved
                    break
            if any(n in ("Set", "set", "FrozenSet", "frozenset", "AbstractSet")
                   for n in names):
                self.setlike.add(param)
        #: nesting depth of ``for`` loops iterating set-ordered data
        self._order_loops = 0

    def _is_setlike(self, node: ast.expr) -> bool:
        """Whether an expression yields a set (iteration order undefined)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.setlike
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_COMBINATORS
            ):
                return self._is_setlike(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    # ------------------------------------------------------------------
    def run(self) -> TaintSummary:
        # two passes so loop-carried taint stabilises; sinks fire once
        saved_record = self.record
        self.record = False
        self._exec_block(self.fn.node.body)
        self.record = saved_record
        self.returns.clear()
        self.sinks.clear()
        self._exec_block(self.fn.node.body)
        return TaintSummary(
            returns=frozenset(self.returns), sinks=frozenset(self.sinks)
        )

    # -- statement interpretation --------------------------------------
    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            extra = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                bucket = self.state.setdefault(stmt.target.id, set())
                bucket |= extra
                if self._order_loops and isinstance(stmt.value, (ast.List, ast.Tuple)):
                    bucket.add(Taint("order", str(stmt.lineno)))
            elif isinstance(stmt.target, ast.Attribute):
                self._check_state_store(stmt.target, extra, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._note_escape(stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                inner = stmt.value.value
                if inner is not None:
                    self._note_escape(inner, stmt.lineno)
            else:
                self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are analysed as their own units
        # remaining statement kinds carry no taint

    def _exec_for(self, stmt: "ast.For | ast.AsyncFor") -> None:
        iter_taints = self._eval(stmt.iter)
        ordered = self._is_setlike(stmt.iter)
        element = {t for t in iter_taints if t.kind != "order"}
        for name_node in ast.walk(stmt.target):
            if isinstance(name_node, ast.Name):
                self.state[name_node.id] = set(element)
        if ordered:
            self._order_loops += 1
        self._exec_block(stmt.body)
        if ordered:
            self._order_loops -= 1
        self._exec_block(stmt.orelse)

    def _assign(
        self, target: ast.expr, taints: Set[Taint], value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            self.state[target.id] = set(taints)
            if self._is_setlike(value):
                self.setlike.add(target.id)
            else:
                self.setlike.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, value)
        elif isinstance(target, ast.Attribute):
            self._check_state_store(target, taints, target.lineno)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taints, value)
        elif isinstance(target, ast.Subscript):
            # weak update: the container keeps its taint and gains the
            # stored value's (``payload["k"] = stamp()`` taints payload)
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name):
                self.state.setdefault(base.id, set()).update(taints)
            elif isinstance(base, ast.Attribute):
                self._check_state_store(base, taints, target.lineno)

    # -- expression evaluation -----------------------------------------
    def _eval(self, node: ast.expr) -> Set[Taint]:
        if isinstance(node, ast.Name):
            return set(self.state.get(node.id, set()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Taint] = set()
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out |= self._eval(comparator)
            return out
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) | self._eval(node.orelse) | self._eval(node.test)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                out |= self._eval(element)
            if isinstance(node, ast.Set):
                out = {t for t in out if t.kind != "order"}
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self._eval_comp(node)
        if isinstance(node, (ast.Await, ast.YieldFrom, ast.Yield)):
            if node.value is not None:
                return self._eval(node.value)
            return set()
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    out |= self._eval(part.value)
            return out
        if isinstance(node, ast.Lambda):
            return set()  # evaluated lazily where it is used as a sort key
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._assign(node.target, taints, node.value)
            return taints
        return set()

    def _eval_comp(
        self,
        node: "ast.ListComp | ast.GeneratorExp | ast.SetComp | ast.DictComp",
    ) -> Set[Taint]:
        out: Set[Taint] = set()
        saved: Dict[str, Optional[Set[Taint]]] = {}
        ordered = False
        for comp in node.generators:
            element = {t for t in self._eval(comp.iter) if t.kind != "order"}
            if self._is_setlike(comp.iter):
                ordered = True
            # bind comprehension targets to the iterable's element taint
            # so the element expression evaluates in the right state
            for name_node in ast.walk(comp.target):
                if isinstance(name_node, ast.Name):
                    if name_node.id not in saved:
                        saved[name_node.id] = self.state.get(name_node.id)
                    self.state[name_node.id] = set(element)
            for condition in comp.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            out |= self._eval(node.key) | self._eval(node.value)
        else:
            out |= self._eval(node.elt)
        for name in sorted(saved):
            previous = saved[name]
            if previous is None:
                self.state.pop(name, None)
            else:
                self.state[name] = previous
        if ordered and not isinstance(node, ast.SetComp):
            out.add(Taint("order", str(node.lineno)))
        if isinstance(node, ast.SetComp):
            out = {t for t in out if t.kind != "order"}
        return out

    # -- calls ---------------------------------------------------------
    def _origin_of(self, chain: Sequence[str]) -> str:
        if not chain:
            return ""
        if chain[0] in self.module.imports:
            return ".".join(self.module.imports[chain[0]] + tuple(chain[1:]))
        return ".".join(chain)

    def _eval_call(self, node: ast.Call) -> Set[Taint]:
        chain = attr_chain(node.func)
        origin = self._origin_of(chain)
        name = chain[-1] if chain else ""
        arg_taints = [self._eval(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }

        self._check_sort_sink(node, chain)
        self._check_persist_sink(node, origin, chain, arg_taints)
        self._check_schedule_sink(node, name, arg_taints, kw_taints)

        # sources
        source = classify_source(origin, has_args=bool(node.args or node.keywords))
        if source in ("wallclock", "monotonic"):
            return {Taint(source, str(node.lineno))}
        if source == "rng":
            return {Taint("rng", str(node.lineno))}
        if origin in ("id", "hash") and isinstance(node.func, ast.Name):
            return {Taint("ident", str(node.lineno))}

        everything: Set[Taint] = set()
        for taints in arg_taints:
            everything |= taints
        for taints in kw_taints.values():
            everything |= taints

        # sanitizers and order plumbing
        if isinstance(node.func, ast.Name) and name in _ORDER_KILLERS:
            return {t for t in everything if t.kind != "order"}
        if isinstance(node.func, ast.Name) and name in (
            "list", "tuple", "iter", "enumerate", "reversed",
        ):
            if any(self._is_setlike(arg) for arg in node.args):
                everything.add(Taint("order", str(node.lineno)))
            return everything
        if name == "sort" and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id in self.state:
                self.state[base.id] = {
                    t for t in self.state[base.id] if t.kind != "order"
                }
            return set()
        if (
            name in MUTATOR_LIKE
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            bucket = self.state.setdefault(node.func.value.id, set())
            bucket |= everything
            if self._order_loops:
                bucket.add(Taint("order", str(node.lineno)))
            return set()

        # project-internal calls: apply callee summaries
        callees = self.project.resolve_call(self.fn, node, self.local_types)
        if callees:
            receiver_taints: Set[Taint] = set()
            if isinstance(node.func, ast.Attribute):
                receiver_taints = self._eval(node.func.value)
            out: Set[Taint] = set()
            for callee in callees:
                out |= self._apply_summary(
                    callee, node, arg_taints, kw_taints, receiver_taints
                )
            return out

        # unknown call: conservative pass-through of argument taint
        if isinstance(node.func, ast.Attribute):
            everything |= self._eval(node.func.value)
        return everything

    def _apply_summary(
        self,
        callee_qname: str,
        node: ast.Call,
        arg_taints: List[Set[Taint]],
        kw_taints: Dict[str, Set[Taint]],
        receiver_taints: Set[Taint],
    ) -> Set[Taint]:
        summary = self.summaries.get(callee_qname)
        callee = self.project.functions.get(callee_qname)
        if summary is None or callee is None:
            out = set(receiver_taints)
            for taints in arg_taints:
                out |= taints
            return out

        def taint_of_param(param: str) -> Set[Taint]:
            if callee.is_method and param == "self":
                return receiver_taints
            try:
                position = callee.params.index(param)
            except ValueError:
                return set()
            if callee.is_method:
                position -= 1
            if 0 <= position < len(arg_taints):
                return arg_taints[position]
            if param in kw_taints:
                return kw_taints[param]
            return set()

        # param sinks: concrete taint flowing into a sink inside callee
        for sink in sorted(summary.sinks):
            incoming = taint_of_param(sink.param)
            hits = {t for t in incoming if t.concrete and t.kind in sink.kinds}
            if hits:
                self._report(
                    sink.rule,
                    node.lineno,
                    node.col_offset,
                    f"{_describe(hits, sink.kinds)} flows into {sink.label}",
                )
            for t in sorted(incoming):
                if t.kind == "param":
                    self.sinks.add(
                        ParamSink(
                            param=t.detail,
                            rule=sink.rule,
                            kinds=sink.kinds,
                            label=sink.label,
                        )
                    )
        # return taint: concrete kinds pass through, params substitute
        out: Set[Taint] = set()
        for t in summary.returns:
            if t.concrete:
                out.add(t)
            else:
                out |= taint_of_param(t.detail)
        return out

    # -- sinks ---------------------------------------------------------
    def _sort_key_expr(self, node: ast.Call, chain: Sequence[str]) -> Optional[ast.expr]:
        is_sorter = False
        if isinstance(node.func, ast.Name) and node.func.id in ("sorted", "min", "max"):
            is_sorter = True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
            is_sorter = True
        if not is_sorter:
            return None
        for keyword in node.keywords:
            if keyword.arg == "key":
                return keyword.value
        return None

    def _check_sort_sink(self, node: ast.Call, chain: Sequence[str]) -> None:
        key = self._sort_key_expr(node, chain)
        if key is None:
            return
        if isinstance(key, ast.Lambda):
            shadowed = {a.arg for a in key.args.args}
            taints: Set[Taint] = set()
            for name_node in ast.walk(key.body):
                if isinstance(name_node, ast.Name) and name_node.id not in shadowed:
                    taints |= self.state.get(name_node.id, set())
        else:
            taints = self._eval(key)
        hits = {t for t in taints if t.concrete and t.kind in _VALUE_KINDS}
        if hits:
            self._report(
                "DET201",
                node.lineno,
                node.col_offset,
                f"sort key depends on {_describe(hits, _VALUE_KINDS)}",
            )
        for t in sorted(taints):
            if t.kind == "param":
                self.sinks.add(
                    ParamSink(
                        param=t.detail,
                        rule="DET201",
                        kinds=_VALUE_KINDS,
                        label=f"a sort key in {self.fn.qname} (line {node.lineno})",
                    )
                )

    def _check_persist_sink(
        self,
        node: ast.Call,
        origin: str,
        chain: Sequence[str],
        arg_taints: List[Set[Taint]],
    ) -> None:
        payload: Optional[Set[Taint]] = None
        label = ""
        if origin in _PERSIST_CALLS and arg_taints:
            payload = arg_taints[0]
            label = f"{origin}()"
        elif (
            chain
            and chain[-1] in ("write", "writelines")
            and isinstance(node.func, ast.Attribute)
            and arg_taints
        ):
            payload = arg_taints[0]
            label = f".{chain[-1]}()"
        if payload is None:
            return
        hits = {t for t in payload if t.concrete}
        if hits:
            self._report(
                "DET202",
                node.lineno,
                node.col_offset,
                f"{_describe(hits, _CONCRETE)} persisted via {label}",
            )
        for t in sorted(payload):
            if t.kind == "param":
                self.sinks.add(
                    ParamSink(
                        param=t.detail,
                        rule="DET202",
                        kinds=_CONCRETE,
                        label=f"persisted output ({label}) in {self.fn.qname} "
                        f"(line {node.lineno})",
                    )
                )

    def _check_schedule_sink(
        self,
        node: ast.Call,
        name: str,
        arg_taints: List[Set[Taint]],
        kw_taints: Dict[str, Set[Taint]],
    ) -> None:
        if name not in ("schedule_at", "schedule_after"):
            return
        checked: List[Tuple[str, Set[Taint]]] = []
        if arg_taints:
            checked.append(("event time", arg_taints[0]))
        if "priority" in kw_taints:
            checked.append(("event priority", kw_taints["priority"]))
        for what, taints in checked:
            hits = {t for t in taints if t.concrete}
            if hits:
                self._report(
                    "DET204",
                    node.lineno,
                    node.col_offset,
                    f"{what} of {name}() depends on {_describe(hits, _CONCRETE)}",
                )
            for t in sorted(taints):
                if t.kind == "param":
                    self.sinks.add(
                        ParamSink(
                            param=t.detail,
                            rule="DET204",
                            kinds=_CONCRETE,
                            label=f"the {what} of {name}() in {self.fn.qname} "
                            f"(line {node.lineno})",
                        )
                    )

    def _check_state_store(
        self, target: ast.Attribute, taints: Set[Taint], line: int
    ) -> None:
        if not (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.fn.is_method
        ):
            return
        if not self.module.is_sim:
            return
        hits = {t for t in taints if t.concrete}
        if hits:
            self._report(
                "DET203",
                line,
                target.col_offset,
                f"self.{target.attr} stores {_describe(hits, _CONCRETE)}; "
                "it will persist into checkpoint envelopes",
            )
        for t in sorted(taints):
            if t.kind == "param":
                self.sinks.add(
                    ParamSink(
                        param=t.detail,
                        rule="DET203",
                        kinds=_CONCRETE,
                        label=f"object state (self.{target.attr}) in "
                        f"{self.fn.qname} (line {line})",
                    )
                )

    def _note_escape(self, value: ast.expr, line: int) -> None:
        taints = self._eval(value)
        self.returns |= {t for t in taints if t.concrete or t.kind == "param"}
        hits = {t for t in taints if t.kind == "order"}
        if hits:
            self._report(
                "DET205",
                line,
                value.col_offset,
                f"returned sequence carries {_describe(hits, _CONCRETE)}; "
                "sort it (or return a set) before it escapes",
            )

    def _report(self, rule: str, line: int, col: int, message: str) -> None:
        if not self.record:
            return
        info = FLOW_RULE_INFO[rule]
        self.findings.append(
            Finding(
                path=self.module.posix,
                line=line,
                column=col,
                rule=rule,
                severity=info.severity,
                message=message,
                hint=info.hint,
            )
        )


#: Mutator methods that merge argument taint into their receiver.
MUTATOR_LIKE = frozenset({
    "add", "append", "appendleft", "extend", "insert", "update",
})


@dataclass
class TaintAnalysis:
    """Project-wide taint results."""

    summaries: Dict[str, TaintSummary]
    findings: List[Finding] = field(default_factory=list)


def analyze_taint(project: Project) -> TaintAnalysis:
    """Fixpoint the summaries, then one recording pass for findings."""
    summaries: Dict[str, TaintSummary] = {}
    for _ in range(10):
        changed = False
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            module = project.modules[fn.module]
            walker = _TaintWalker(project, module, fn, summaries, record=False)
            summary = walker.run()
            if summaries.get(qname) != summary:
                summaries[qname] = summary
                changed = True
        if not changed:
            break
    findings: List[Finding] = []
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        module = project.modules[fn.module]
        walker = _TaintWalker(project, module, fn, summaries, record=True)
        walker.run()
        findings.extend(walker.findings)
    return TaintAnalysis(summaries=summaries, findings=findings)
