"""Metadata for the flow-analysis rule families.

Kept import-light on purpose: the suppression parser in
``repro.analysis.linter`` needs these IDs to validate
``# repro: allow(...)`` comments without importing the flow engine
(which would be a circular import), and docs/CLI listings render the
titles and hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class FlowRuleInfo:
    """Identity card for one flow rule."""

    id: str
    title: str
    severity: str
    hint: str


FLOW_RULES: Tuple[FlowRuleInfo, ...] = (
    FlowRuleInfo(
        id="DET201",
        title="nondeterministic value reaches a sort key",
        severity="error",
        hint="Key the sort on stable job/event fields instead of clock, "
        "RNG, or id() values (flow-sensitive counterpart of DET107).",
    ),
    FlowRuleInfo(
        id="DET202",
        title="nondeterministic value reaches a persisted artifact",
        severity="error",
        hint="Derive persisted fields from simulation state, or record the "
        "value once in metadata that is excluded from byte comparisons.",
    ),
    FlowRuleInfo(
        id="DET203",
        title="nondeterministic value stored into sim object state",
        severity="error",
        hint="Checkpoint envelopes pickle object state; store virtual time "
        "or seeded-stream draws instead (flow-sensitive DET101/DET103).",
    ),
    FlowRuleInfo(
        id="DET204",
        title="nondeterministic value reaches an event time or priority",
        severity="error",
        hint="Event ordering must be a pure function of simulation state; "
        "compute times from sim.now and deterministic deltas.",
    ),
    FlowRuleInfo(
        id="DET205",
        title="set-iteration order escapes the function",
        severity="error",
        hint="Sort the materialised sequence before returning it, or return "
        "a set (flow-sensitive counterpart of DET105: a sequence that is "
        "sorted before escaping is fine).",
    ),
    FlowRuleInfo(
        id="CONC301",
        title="cross-boundary mutation outside a declared channel",
        severity="error",
        hint="Route the interaction through a channel declared in "
        "[tool.repro.analysis.boundaries], or move the callee across "
        "the LP cut.",
    ),
    FlowRuleInfo(
        id="CONC302",
        title="module global mutated from both sides of the LP cut",
        severity="error",
        hint="Split the global per side or own it on one side behind a "
        "channel interface; shared mutable globals cannot be "
        "partitioned between logical processes.",
    ),
    FlowRuleInfo(
        id="CONC303",
        title="unpicklable value reachable from session state",
        severity="error",
        hint="Session state must survive pickling for checkpoints and "
        "LP-state exchange: replace lambdas/local functions with "
        "module-level ones, drop handles/locks in __getstate__.",
    ),
)

FLOW_RULE_INFO: Dict[str, FlowRuleInfo] = {rule.id: rule for rule in FLOW_RULES}
FLOW_RULE_IDS = frozenset(FLOW_RULE_INFO)
