"""Flow tier of the determinism sanitizer (``repro lint --deep``).

Interprocedural effect inference, nondeterminism taint tracking, and
LP-boundary rules over the whole project.  This ``__init__`` stays
import-light on purpose: :mod:`repro.analysis.linter` imports
:mod:`repro.analysis.flow.catalog` for suppression-ID validation, so
pulling the heavy engine in here would create an import cycle.  Import
the driver explicitly::

    from repro.analysis.flow.analyzer import analyze_paths, deep_lint
"""

from repro.analysis.flow.catalog import FLOW_RULE_IDS, FLOW_RULE_INFO, FLOW_RULES

__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "FLOW_RULE_INFO"]
