"""LP-boundary rules: the static proof-of-disjointness for the cut.

ROADMAP item 1 wants the simulator split into logical processes.  That
is only sound if the state each LP owns is disjoint and every cross-LP
interaction goes through a declared channel.  The cut is declared in
``pyproject.toml``::

    [tool.repro.analysis.boundaries]
    machine = ["repro.machine", "repro.sim"]
    scheduler = ["repro.qs", "repro.rm"]
    channels = ["repro.rm -> repro.machine"]
    session-roots = ["repro.checkpoint.session.SimulationSession"]

Every key except the reserved ``channels`` and ``session-roots`` names
a *side* and lists its module prefixes (dotted-prefix matched).  A
channel entry ``caller -> callee`` whitelists mutating calls from
modules under *caller* into modules under *callee*.

Three rules consume this manifest plus the effect analysis:

CONC301
    a call from one side into a function on the other side that
    (transitively) mutates shared state, outside any declared channel —
    or a direct write to a module global owned by the other side.
CONC302
    a module global written from both sides: no partition of modules
    can make that state disjoint.
CONC303
    an unpicklable value (lambda, local function, open handle, thread
    lock) stored on an object reachable from the declared session
    roots.  LP state is exchanged via checkpoint envelopes (pickle);
    classes that define ``__getstate__`` are trusted to canonicalise
    themselves and are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.config import find_pyproject, read_table
from repro.analysis.findings import Finding
from repro.analysis.rules.base import attr_chain

from repro.analysis.flow.catalog import FLOW_RULE_INFO
from repro.analysis.flow.effects import EffectAnalysis
from repro.analysis.flow.project import ClassInfo, Project

#: Constructor origins whose instances cannot be pickled.
_UNPICKLABLE_ORIGINS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "multiprocessing.Lock",
    "multiprocessing.RLock",
})


def _dotted_prefix(prefix: str, name: str) -> bool:
    """Whether *name* is *prefix* or lives under it (dotted)."""
    return name == prefix or name.startswith(prefix + ".")


@dataclass(frozen=True)
class BoundaryConfig:
    """The declared LP cut."""

    #: (side name, module prefixes), sorted by side name
    sides: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: (caller prefix, callee prefix) pairs that are allowed to mutate
    channels: Tuple[Tuple[str, str], ...] = ()
    #: class qnames whose instances are checkpoint/LP-exchange payload
    session_roots: Tuple[str, ...] = ()
    source: Optional[str] = None

    def __bool__(self) -> bool:
        return bool(self.sides or self.session_roots)

    def side_of(self, qname: str) -> Optional[str]:
        """The side owning a module/function qname (longest prefix wins)."""
        best: Optional[str] = None
        best_len = -1
        for side, prefixes in self.sides:
            for prefix in prefixes:
                if _dotted_prefix(prefix, qname) and len(prefix) > best_len:
                    best, best_len = side, len(prefix)
        return best

    def is_channel(self, caller_qname: str, callee_qname: str) -> bool:
        """Whether a caller→callee mutation crosses via a declared channel."""
        for caller_prefix, callee_prefix in self.channels:
            if _dotted_prefix(caller_prefix, caller_qname) and _dotted_prefix(
                callee_prefix, callee_qname
            ):
                return True
        return False


def load_boundaries(start: Union[str, Path] = ".") -> BoundaryConfig:
    """Read ``[tool.repro.analysis.boundaries]`` above *start*."""
    pyproject = find_pyproject(start)
    if pyproject is None:
        return BoundaryConfig()
    return boundaries_from_table(
        read_table(pyproject, "tool.repro.analysis.boundaries"),
        source=str(pyproject),
    )


def boundaries_from_table(
    table: Dict[str, object], source: Optional[str] = None
) -> BoundaryConfig:
    """Build a :class:`BoundaryConfig` from a raw TOML mapping."""

    def str_list(value: object) -> Tuple[str, ...]:
        if isinstance(value, str):
            return (value,)
        if isinstance(value, (list, tuple)):
            return tuple(str(item) for item in value)
        return ()

    sides: List[Tuple[str, Tuple[str, ...]]] = []
    channels: List[Tuple[str, str]] = []
    roots: Tuple[str, ...] = ()
    for key in sorted(table):
        if key == "channels":
            for entry in str_list(table[key]):
                if "->" in entry:
                    caller, callee = entry.split("->", 1)
                    channels.append((caller.strip(), callee.strip()))
        elif key == "session-roots":
            roots = str_list(table[key])
        else:
            sides.append((key, str_list(table[key])))
    return BoundaryConfig(
        sides=tuple(sides),
        channels=tuple(sorted(channels)),
        session_roots=roots,
        source=source,
    )


def check_boundaries(
    analysis: EffectAnalysis, boundaries: BoundaryConfig
) -> List[Finding]:
    """Run CONC301/CONC302/CONC303 over the analysed project."""
    if not boundaries:
        return []
    findings: List[Finding] = []
    findings.extend(_check_cross_calls(analysis, boundaries))
    findings.extend(_check_shared_globals(analysis, boundaries))
    findings.extend(_check_session_state(analysis.project, boundaries))
    return findings


def _finding(
    project: Project, module_name: str, line: int, col: int, rule: str, message: str
) -> Finding:
    info = FLOW_RULE_INFO[rule]
    return Finding(
        path=project.modules[module_name].posix,
        line=line,
        column=col,
        rule=rule,
        severity=info.severity,
        message=message,
        hint=info.hint,
    )


def _check_cross_calls(
    analysis: EffectAnalysis, boundaries: BoundaryConfig
) -> List[Finding]:
    """CONC301: mutating calls and global writes across the cut."""
    project = analysis.project
    findings: List[Finding] = []
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        caller_side = boundaries.side_of(fn.module)
        if caller_side is None:
            continue
        for site in analysis.calls.get(qname, []):
            callee = project.functions.get(site.callee)
            if callee is None:
                continue
            callee_side = boundaries.side_of(callee.module)
            if callee_side is None or callee_side == caller_side:
                continue
            callee_fx = analysis.effects_of(site.callee)
            if not callee_fx.mutates_shared_state():
                continue
            if boundaries.is_channel(fn.module, site.callee):
                continue
            what = []
            if callee_fx.self_writes:
                what.append(
                    "mutates " + ", ".join(
                        f"self.{attr}" for attr in sorted(callee_fx.self_writes)[:3]
                    )
                )
            if callee_fx.param_writes:
                what.append(
                    "mutates parameter(s) "
                    + ", ".join(sorted(callee_fx.param_writes)[:3])
                )
            if callee_fx.global_writes:
                what.append(
                    "writes " + ", ".join(sorted(callee_fx.global_writes)[:3])
                )
            findings.append(_finding(
                project, fn.module, site.line, site.col, "CONC301",
                f"[{caller_side}→{callee_side}] {qname} calls {site.callee}, "
                f"which {'; '.join(what)} — not a declared channel",
            ))
        # direct writes to a global owned by the other side
        direct = analysis.direct.get(qname)
        if direct is None:
            continue
        for key in sorted(direct.global_writes):
            owner_module = key.split(":", 1)[0]
            owner_side = boundaries.side_of(owner_module)
            if owner_side is None or owner_side == caller_side:
                continue
            if boundaries.is_channel(fn.module, owner_module):
                continue
            findings.append(_finding(
                project, fn.module, fn.node.lineno, fn.node.col_offset, "CONC301",
                f"[{caller_side}→{owner_side}] {qname} writes module global "
                f"{key} across the LP cut",
            ))
    return findings


def _check_shared_globals(
    analysis: EffectAnalysis, boundaries: BoundaryConfig
) -> List[Finding]:
    """CONC302: one global, writers on both sides."""
    project = analysis.project
    writers_of: Dict[str, Set[str]] = {}
    for qname in sorted(analysis.direct):
        for key in analysis.direct[qname].global_writes:
            writers_of.setdefault(key, set()).add(qname)
    findings: List[Finding] = []
    for key in sorted(writers_of):
        owner_module, global_name = key.split(":", 1)
        module = project.modules.get(owner_module)
        if module is None:
            continue
        sides: Dict[str, List[str]] = {}
        for writer in sorted(writers_of[key]):
            side = boundaries.side_of(project.functions[writer].module)
            if side is not None:
                sides.setdefault(side, []).append(writer)
        if len(sides) < 2:
            continue
        info = module.globals.get(global_name)
        line = info.line if info is not None else 1
        description = "; ".join(
            f"{side}: {', '.join(writers[:2])}" for side, writers in sorted(sides.items())
        )
        findings.append(_finding(
            project, owner_module, line, 0, "CONC302",
            f"module global {key} is written from both sides of the LP cut "
            f"({description})",
        ))
    return findings


def _check_session_state(
    project: Project, boundaries: BoundaryConfig
) -> List[Finding]:
    """CONC303: unpicklable values on session-reachable objects."""
    reachable = _reachable_classes(project, boundaries.session_roots)
    findings: List[Finding] = []
    for class_qname in sorted(reachable):
        info = project.classes[class_qname]
        if info.has_getstate:
            continue
        module = project.modules[info.module]
        for method_name in sorted(info.methods):
            fn = project.functions[info.methods[method_name]]
            local_defs = {
                inner.name
                for inner in ast.walk(fn.node)
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                and inner is not fn.node
            }
            for stmt in ast.walk(fn.node):
                pairs: List[Tuple[ast.expr, ast.expr]] = []
                if isinstance(stmt, ast.Assign):
                    pairs = [(t, stmt.value) for t in stmt.targets]
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    pairs = [(stmt.target, stmt.value)]
                for target, value in pairs:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    reason = _unpicklable_reason(value, local_defs, module.imports)
                    if reason is None:
                        continue
                    findings.append(_finding(
                        project, info.module, target.lineno, target.col_offset,
                        "CONC303",
                        f"{class_qname}.{target.attr} holds {reason} but the "
                        "class is reachable from session state "
                        f"({', '.join(boundaries.session_roots)}) and defines "
                        "no __getstate__",
                    ))
    return findings


def _unpicklable_reason(
    value: ast.expr,
    local_defs: Set[str],
    imports: Dict[str, Tuple[str, ...]],
) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the local function {value.id}()"
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        if not chain:
            return None
        if tuple(chain) == ("open",):
            return "an open file handle"
        origin = ".".join(imports.get(chain[0], (chain[0],)) + tuple(chain[1:]))
        if origin in _UNPICKLABLE_ORIGINS:
            return f"a {origin}()"
        if origin in ("io.open", "pathlib.Path.open"):
            return "an open file handle"
    return None


def _reachable_classes(
    project: Project, roots: Sequence[str]
) -> Set[str]:
    """Classes reachable from *roots* via attribute-type edges."""
    seen: Set[str] = set()
    stack: List[str] = [root for root in roots if root in project.classes]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for cls in project.mro(current):
            seen.add(cls)
            info: ClassInfo = project.classes[cls]
            for attr in sorted(info.attr_type_names):
                for candidate in project.attr_types(cls, attr):
                    if candidate not in seen:
                        stack.append(candidate)
    return seen
