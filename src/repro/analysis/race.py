"""The runtime layer of the determinism sanitizer: event-race detection.

The DES engine orders events by ``(time, priority, seq)``.  ``seq`` —
the insertion sequence — always breaks the tie, so every run is
deterministic; but when two events at the same timestamp share the
same priority, their relative order is decided *only* by which was
scheduled first.  That is the discrete-event analogue of a data race:
the code never declared an order, and any refactor that reorders the
scheduling calls silently reorders the simulation.

:class:`RaceDetector` attaches to a
:class:`~repro.sim.engine.Simulator` as an observer.  It groups fired
events into same-timestamp cohorts, verifies that the declared
tie-break key ``(priority, seq)`` totally orders each cohort (it must,
by construction — a violation indicates engine corruption), and
classifies every priority tie:

* **ambiguous** — events with *different callbacks* collide on
  ``(time, priority)``: heterogeneous actions whose relative order is
  an accident of insertion.  Reported as an error finding.
* **tie** — events running the *same callback* (e.g. two jobs ending
  an iteration in the same instant) collide: still sequence-ordered,
  usually benign, reported as a warning so refactors know the hazard
  exists.

The detector only observes: it never reorders, delays or perturbs
events, so a sanitized run is byte-identical to an unsanitized one.
The report format mirrors :class:`~repro.parallel.runner.SweepStats`
(counters + ``summary_line()`` + ``accumulate()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


def callback_identity(callback: Any) -> str:
    """A stable, human-readable identity for an event callback."""
    func = getattr(callback, "__func__", callback)
    name = getattr(func, "__qualname__", None)
    if name is None:
        name = type(callback).__qualname__
    return name


@dataclass(frozen=True)
class RaceFinding:
    """One same-(time, priority) collision observed during a run."""

    run: str
    time: float
    priority: int
    severity: str  # "error" (ambiguous) or "warning" (homogeneous tie)
    #: ``(callback identity, label)`` of each colliding event, in
    #: fired (sequence) order.
    events: Tuple[Tuple[str, str], ...]

    def describe(self) -> str:
        """One-line human-readable account of the collision."""
        kind = "ambiguous cohort" if self.severity == "error" else "sequence tie"
        members = ", ".join(
            f"{identity}({label!r})" if label else identity
            for identity, label in self.events
        )
        run = f" run={self.run}" if self.run else ""
        return (
            f"{kind} at t={self.time:.6f} priority={self.priority}"
            f"{run}: order decided by insertion only — [{members}]"
        )


@dataclass
class RaceStats:
    """Bookkeeping for one (or several accumulated) sanitized runs.

    ``events`` counts observed event firings; ``cohorts`` counts
    same-timestamp groups of two or more events; ``ties`` counts
    priority groups ordered only by insertion sequence; ``ambiguous``
    counts the subset whose members run different callbacks.
    """

    runs: int = 0
    events: int = 0
    cohorts: int = 0
    ties: int = 0
    ambiguous: int = 0
    #: recorded collisions, capped at the detector's ``max_findings``
    findings: List[RaceFinding] = field(default_factory=list)

    def accumulate(self, other: "RaceStats") -> None:
        """Fold *other* into this (for multi-run totals)."""
        self.runs += other.runs
        self.events += other.events
        self.cohorts += other.cohorts
        self.ties += other.ties
        self.ambiguous += other.ambiguous
        self.findings.extend(other.findings)

    def summary_line(self) -> str:
        """One-line human-readable account, mirroring ``SweepStats``."""
        parts = [
            f"{self.runs} run(s)",
            f"{self.events} events",
            f"{self.cohorts} same-time cohorts",
        ]
        if self.ties:
            parts.append(f"{self.ties} sequence ties")
        if self.ambiguous:
            parts.append(f"{self.ambiguous} ambiguous cohorts")
        if not self.ties and not self.ambiguous:
            parts.append("no order hazards")
        return ", ".join(parts)

    @property
    def error_findings(self) -> List[RaceFinding]:
        """The ambiguous (error-severity) collisions only."""
        return [f for f in self.findings if f.severity == "error"]


class RaceDetector:
    """Observes a :class:`~repro.sim.engine.Simulator` for event races.

    Attach with ``sim.attach_observer(detector)`` (done by the
    experiment harness under ``--sanitize``).  One detector may watch
    several runs in sequence; call :meth:`begin_run` at each run start
    so cohorts never straddle two simulations that happen to share
    timestamps.

    Parameters
    ----------
    max_findings:
        Cap on recorded :class:`RaceFinding` objects (counters keep
        counting past it); the first *N* in firing order are kept, so
        the record set is deterministic.
    """

    def __init__(self, max_findings: int = 100) -> None:
        self.max_findings = max_findings
        self.stats = RaceStats()
        self._run_label = ""
        self._cohort: List[Tuple[int, int, str, str]] = []
        self._cohort_time: Optional[float] = None

    # ------------------------------------------------------------------
    # observer protocol (called by the engine)
    # ------------------------------------------------------------------
    def begin_run(self, label: str = "") -> None:
        """Start a new simulation: close any pending cohort."""
        self._flush()
        self._run_label = label
        self.stats.runs += 1

    def on_event(self, event: Any) -> None:
        """Record one fired event (engine observer hook)."""
        self.stats.events += 1
        time = event.time
        # Exact float match is the point here: the engine fires events
        # grouped by identical timestamps and never mutates Event.time,
        # so cohort membership is exact equality by construction.
        same = self._cohort_time is not None and time == self._cohort_time  # repro: allow(DET106): cohort grouping mirrors the engine's exact (time, priority, seq) key; an epsilon would merge distinct cohorts
        if not same:
            self._flush()
            self._cohort_time = time
        self._cohort.append(
            (event.priority, event.seq, callback_identity(event.callback), event.label)
        )

    def finish(self) -> RaceStats:
        """Close the pending cohort and return the stats."""
        self._flush()
        return self.stats

    # ------------------------------------------------------------------
    # cohort analysis
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        cohort, self._cohort = self._cohort, []
        time, self._cohort_time = self._cohort_time, None
        if len(cohort) < 2 or time is None:
            return
        self.stats.cohorts += 1
        # The tie-break key must totally order the cohort: events are
        # fired in heap order, so (priority, seq) must be strictly
        # increasing.  A violation means the engine's invariant broke.
        for before, after in zip(cohort, cohort[1:]):
            if before[:2] >= after[:2]:
                raise AssertionError(
                    f"engine ordering invariant broken at t={time}: "
                    f"{before} fired before {after}"
                )
        groups: dict = {}
        for priority, seq, identity, label in cohort:
            groups.setdefault(priority, []).append((seq, identity, label))
        for priority in sorted(groups):
            members = groups[priority]
            if len(members) < 2:
                continue
            identities = {identity for _, identity, _ in members}
            severity = "error" if len(identities) > 1 else "warning"
            if severity == "error":
                self.stats.ambiguous += 1
            else:
                self.stats.ties += 1
            if len(self.stats.findings) < self.max_findings:
                self.stats.findings.append(RaceFinding(
                    run=self._run_label,
                    time=time,
                    priority=priority,
                    severity=severity,
                    events=tuple(
                        (identity, label) for _, identity, label in members
                    ),
                ))
