"""The static layer of the determinism sanitizer.

``repro lint`` parses every Python file it is pointed at, runs the
rule catalogue (:mod:`repro.analysis.rules`) over the AST, honours the
``[tool.repro.analysis]`` configuration, and applies inline
suppressions of the form::

    risky_call()  # repro: allow(DET102): worker timeout is host wall-time

A suppression **must** carry a justification after the closing
parenthesis — a bare ``# repro: allow(DET102)`` is itself reported as
``DET100``, as is a suppression naming an unknown rule.  A suppression
on its own line applies to the next line; a trailing suppression
applies to its own line.

The linter only reads source text: it never imports the modules it
checks, so it is safe on files with import-time side effects and fast
enough for a pre-commit hook.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.flow.catalog import FLOW_RULE_IDS
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, SUPPRESSION_RULE_ID, SourceFile

#: A well-formed suppression comment (syntax in the module docstring).
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<ids>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)\s*\)"
    r"(?::\s*(?P<why>.*\S))?"
)
#: Anything that looks like a suppression attempt, well-formed or not.
_SUPPRESSION_ATTEMPT = re.compile(r"#\s*repro:\s*allow")


@dataclass(frozen=True)
class Suppression:
    """One parsed inline suppression."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str
    #: whether the comment stands alone (applies to the next line too)
    standalone: bool


def _comment_tokens(text: str) -> List[Tuple[int, bool, str]]:
    """Real comment tokens as ``(line, standalone, text)``.

    Tokenizing (rather than scanning lines) keeps suppression-shaped
    text inside string literals — docs, error hints, test fixtures —
    from being parsed as suppressions.
    """
    comments: List[Tuple[int, bool, str]] = []
    lines = text.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line_no, column = token.start
            before = lines[line_no - 1][:column] if line_no <= len(lines) else ""
            comments.append((line_no, not before.strip(), token.string))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass  # unparsable file: the DET000 syntax finding covers it
    return comments


def parse_suppressions(
    text: str, path_label: str
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract suppressions and report malformed ones as DET100."""
    suppressions: Dict[int, Suppression] = {}
    problems: List[Finding] = []

    def det100(line_no: int, message: str) -> None:
        problems.append(Finding(
            path=path_label,
            line=line_no,
            column=0,
            rule=SUPPRESSION_RULE_ID,
            severity="error",
            message=message,
            hint=(
                "write `# repro: allow(<RULE-ID>): <why this is safe>` "
                "— the justification is mandatory and is read in review"
            ),
        ))

    for line_no, standalone, comment in _comment_tokens(text):
        if not _SUPPRESSION_ATTEMPT.search(comment):
            continue
        matched = _SUPPRESSION.search(comment)
        if not matched:
            det100(line_no, "malformed suppression comment")
            continue
        ids = tuple(part.strip() for part in matched.group("ids").split(","))
        why = (matched.group("why") or "").strip()
        unknown = [
            i for i in ids
            if i not in RULES_BY_ID
            and i not in FLOW_RULE_IDS
            and i != SUPPRESSION_RULE_ID
        ]
        if unknown:
            det100(line_no, f"suppression names unknown rule(s): {', '.join(unknown)}")
            continue
        if not why:
            det100(
                line_no,
                f"suppression of {', '.join(ids)} carries no justification",
            )
            continue
        suppressions[line_no] = Suppression(
            line=line_no,
            rule_ids=ids,
            justification=why,
            standalone=standalone,
        )
    return suppressions, problems


def is_suppressed(
    suppressions: Dict[int, Suppression], line: int, rule_id: str
) -> bool:
    """Whether a finding at *line* for *rule_id* is suppressed."""
    own = suppressions.get(line)
    if own is not None and rule_id in own.rule_ids:
        return True
    above = suppressions.get(line - 1)
    return above is not None and above.standalone and rule_id in above.rule_ids


def iter_python_files(
    paths: Sequence[Union[str, Path]], config: AnalysisConfig
) -> Iterable[Path]:
    """Expand files/directories into a stable, sorted file sequence."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if not config.is_excluded(candidate.as_posix()):
                yield candidate


class Linter:
    """Runs the rule catalogue over files, applying config + suppressions."""

    def __init__(self, config: Optional[AnalysisConfig] = None) -> None:
        self.config = config or AnalysisConfig()
        self.rules = [
            rule for rule in ALL_RULES if self.config.rule_enabled(rule.id)
        ]

    def lint_text(self, text: str, path: Union[str, Path]) -> List[Finding]:
        """Lint one file's source text (the core entry point)."""
        path = Path(path)
        label = path.as_posix()
        suppressions, findings = parse_suppressions(text, label)
        try:
            src = SourceFile.parse(path, text, self.config)
        except SyntaxError as exc:
            findings.append(Finding(
                path=label,
                line=exc.lineno or 1,
                column=exc.offset or 0,
                rule="DET000",
                severity="error",
                message=f"file does not parse: {exc.msg}",
                hint="the sanitizer needs a valid AST; fix the syntax error",
            ))
            return findings
        for rule in self.rules:
            if not rule.applies_to(src):
                continue
            for node, message in rule.check(src):
                line = getattr(node, "lineno", 1)
                if is_suppressed(suppressions, line, rule.id):
                    continue
                findings.append(Finding(
                    path=label,
                    line=line,
                    column=getattr(node, "col_offset", 0),
                    rule=rule.id,
                    severity=rule.severity,
                    message=message,
                    hint=rule.hint,
                ))
        return findings

    def lint_file(self, path: Union[str, Path]) -> List[Finding]:
        """Lint one file from disk."""
        path = Path(path)
        return self.lint_text(path.read_text(encoding="utf-8"), path)

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        """Lint files and directories (recursively), in sorted order."""
        findings: List[Finding] = []
        for path in iter_python_files(paths, self.config):
            findings.extend(self.lint_file(path))
        return findings


def lint_paths(
    paths: Sequence[Union[str, Path]],
    config: Optional[AnalysisConfig] = None,
) -> List[Finding]:
    """Convenience wrapper: lint *paths* with *config* (or discovered).

    When *config* is ``None`` it is loaded from the nearest
    ``pyproject.toml`` above the first path.
    """
    if config is None:
        config = load_config(paths[0] if paths else ".")
    return Linter(config).lint_paths(paths)
