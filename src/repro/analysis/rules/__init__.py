"""The determinism rule catalogue.

Every rule has a stable ID (``DET1xx``), a severity, and a fix hint;
``repro lint`` runs all of them unless ``[tool.repro.analysis]``
selects or ignores specific IDs.  ``DET100`` is reserved for the
engine itself (malformed or unjustified suppressions) and has no rule
class here.

See ``docs/static-analysis.md`` for the rendered catalogue.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.rules.base import Rule, SourceFile, attr_chain, build_import_map
from repro.analysis.rules.comparisons import FloatTimeEqualityRule, UnstableSortKeyRule
from repro.analysis.rules.defaults import EnvironmentReadRule, MutableDefaultRule
from repro.analysis.rules.ordering import FilesystemOrderRule, SetIterationRule
from repro.analysis.rules.randomness import EntropySourceRule, UnseededRandomRule
from repro.analysis.rules.wallclock import MonotonicClockRule, WallClockRule

#: ID of the engine-level rule for malformed suppressions.
SUPPRESSION_RULE_ID = "DET100"

#: All registered rules, in catalogue (ID) order.
ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    MonotonicClockRule(),
    UnseededRandomRule(),
    EntropySourceRule(),
    SetIterationRule(),
    FloatTimeEqualityRule(),
    UnstableSortKeyRule(),
    MutableDefaultRule(),
    FilesystemOrderRule(),
    EnvironmentReadRule(),
)

#: Rules by ID, for suppression validation and documentation.
RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "SUPPRESSION_RULE_ID",
    "Rule",
    "SourceFile",
    "attr_chain",
    "build_import_map",
]
