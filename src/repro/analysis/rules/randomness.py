"""DET103/DET104 — randomness that bypasses the seeded streams.

All stochastic behaviour must flow through
:class:`repro.sim.rng.RandomStreams` named substreams (or an
explicitly seeded ``random.Random(seed)`` those streams are built
from).  The module-level ``random.*`` functions share one global,
implicitly seeded generator; ``os.urandom``/``uuid4``/``secrets``
are entropy sources that can never be replayed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile

#: Module-level random functions drawing from the shared global RNG.
GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}

#: Pure entropy sources: not reproducible under any seed.
ENTROPY_ORIGINS = {
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


class UnseededRandomRule(Rule):
    """DET103: RNG use that bypasses ``repro.sim.rng``."""

    id = "DET103"
    title = "unseeded / global RNG"
    severity = "error"
    hint = (
        "draw from a RandomStreams named substream "
        "(repro.sim.rng.RandomStreams(seed).stream(name)); if a raw "
        "generator is unavoidable, construct random.Random(seed) with "
        "an explicit seed derived via derive_seed()"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = src.resolve(node.func)
            if len(origin) >= 2 and origin[0] == "random" and origin[-1] in GLOBAL_RANDOM_FNS:
                yield node, (
                    f"random.{origin[-1]}() draws from the shared global "
                    "generator (implicitly seeded from the OS)"
                )
            elif origin == ("random", "Random") and not node.args:
                yield node, "random.Random() without an explicit seed"
            elif origin[:2] == ("numpy", "random"):
                yield node, (
                    "numpy.random is process-global state; results depend "
                    "on import and call order across the whole process"
                )


class EntropySourceRule(Rule):
    """DET104: irreproducible entropy source."""

    id = "DET104"
    title = "entropy source"
    severity = "error"
    hint = (
        "entropy sources cannot be replayed from a seed; derive "
        "identifiers and seeds deterministically "
        "(repro.sim.rng.derive_seed / hashlib over stable inputs)"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = src.resolve(node.func)
            if origin in ENTROPY_ORIGINS:
                yield node, f"{'.'.join(origin)}() is a pure entropy source"
            elif origin[:1] == ("secrets",):
                yield node, "the secrets module is a pure entropy source"
