"""DET106/DET107 — comparisons that silently break determinism.

Simulated timestamps are floats accumulated through different
arithmetic paths; exact ``==`` between two of them works until a
refactor reorders the additions.  Sort keys built on ``id()`` or
``hash()`` are worse: they change on every process launch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile

#: Identifier fragments that mark a value as simulated time.
_TIME_FRAGMENT = "time"
_TIME_EXACT = {"now", "_now", "t0", "t1", "deadline", "horizon"}


def _is_timeish(node: ast.AST) -> bool:
    """Whether an expression names a simulated-time value."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    lowered = name.lower()
    return _TIME_FRAGMENT in lowered or lowered in _TIME_EXACT


def _is_zero_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


class FloatTimeEqualityRule(Rule):
    """DET106: exact equality on simulated-time values."""

    id = "DET106"
    title = "float equality on simulated time"
    severity = "warning"
    sim_only = True
    hint = (
        "simulated timestamps accumulate float error along "
        "path-dependent routes; compare with an epsilon "
        "(abs(a - b) <= EPS) or order events explicitly via the "
        "engine's (time, priority, seq) key"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # == 0 is sentinel convention ("not started yet"),
                # not arithmetic comparison between two timestamps.
                if _is_zero_literal(left) or _is_zero_literal(right):
                    continue
                if _is_timeish(left) or _is_timeish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield node, (
                        f"exact {symbol} between simulated-time values"
                    )
                    break


class UnstableSortKeyRule(Rule):
    """DET107: ``id()`` / ``hash()`` inside a sort key."""

    id = "DET107"
    title = "unstable sort key"
    severity = "error"
    hint = (
        "id() changes every allocation and str hashes change every "
        "process; sort on stable domain identity (job_id, name, "
        "sequence number) instead"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            key = _sort_key_arg(node, src)
            if key is None:
                continue
            if isinstance(key, ast.Name) and key.id in ("id", "hash"):
                yield key, f"sort key is the builtin {key.id}()"
                continue
            for inner in ast.walk(key):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id in ("id", "hash")
                ):
                    yield inner, f"sort key calls {inner.func.id}()"
                    break


def _sort_key_arg(node: ast.AST, src: SourceFile) -> "ast.AST | None":
    """The ``key=`` argument of a sorted/min/max/.sort call, if any."""
    if not isinstance(node, ast.Call):
        return None
    is_sorter = (
        isinstance(node.func, ast.Name) and node.func.id in ("sorted", "min", "max")
    ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
    if not is_sorter:
        return None
    for keyword in node.keywords:
        if keyword.arg == "key":
            return keyword.value
    return None
