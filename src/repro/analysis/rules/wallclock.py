"""DET101/DET102 — wall-clock and monotonic-clock reads.

A simulation whose output is a pure function of (config, seed) cannot
read the host's clocks: a ``time.time()`` that leaks into simulated
state or serialized output makes every run unique.  The one sanctioned
site is the injected report clock (``repro/experiments/clock.py``),
listed in ``wallclock-allow``; harness-level timeout bookkeeping may
suppress DET102 inline with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile

#: Dotted origins that return the time of day (or derive from it).
WALLCLOCK_ORIGINS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "ctime"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
    ("datetime", "date", "today"),
}

#: Monotonic/CPU clocks plus real-time waits: not time-of-day, but
#: still different on every run.
MONOTONIC_ORIGINS = {
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("time", "thread_time"),
    ("time", "thread_time_ns"),
    ("time", "sleep"),
}


def _clock_calls(src: SourceFile, origins: set) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = src.resolve(node.func)
        if origin in origins or origin[-3:] in origins:
            yield node, f"call to {'.'.join(origin)}()"


class WallClockRule(Rule):
    """DET101: time-of-day read outside the sanctioned clock module."""

    id = "DET101"
    title = "wall-clock read"
    severity = "error"
    clock_rule = True
    hint = (
        "simulation code must be a pure function of (config, seed); "
        "route elapsed-time reporting through the injected "
        "repro.experiments.clock.ReportClock (the only allowlisted "
        "wall-clock site) or derive times from Simulator.now"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node, what in _clock_calls(src, WALLCLOCK_ORIGINS):
            yield node, f"{what} reads the time of day"


class MonotonicClockRule(Rule):
    """DET102: monotonic/CPU clock read (or real-time sleep)."""

    id = "DET102"
    title = "monotonic-clock read"
    severity = "warning"
    clock_rule = True
    hint = (
        "monotonic clocks vary run to run; use Simulator.now for "
        "simulated time, ReportClock for elapsed-time reporting, or "
        "suppress with a justification where host wall-time is the "
        "point (e.g. harness worker timeouts)"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node, what in _clock_calls(src, MONOTONIC_ORIGINS):
            yield node, f"{what} reads a host clock"
