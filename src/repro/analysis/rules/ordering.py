"""DET105/DET109 — iteration whose order the language doesn't fix.

Set iteration order depends on element hashes, and string hashes are
randomised per process (``PYTHONHASHSEED``): the same sweep cell
executed in two workers can visit a set in two different orders.  If
that order feeds simulation state or serialized output, byte identity
is gone.  (Dict iteration is insertion-ordered since Python 3.7 and is
deliberately *not* flagged — unless the keys came from a set, the
order is deterministic.)

Filesystem enumeration has the same shape: ``os.listdir``/``glob``
return entries in directory order, which differs across filesystems
and machines.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.rules.base import Rule, SourceFile

#: Methods that return sets when called on a set.
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}

#: Builtins whose result is order-insensitive, so feeding them a set
#: is harmless.
_ORDER_FREE_CONSUMERS = {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}

#: Filesystem enumerations returning entries in directory order.
_FS_ORIGINS = {
    ("os", "listdir"),
    ("os", "scandir"),
    ("os", "walk"),
    ("glob", "glob"),
    ("glob", "iglob"),
}
_FS_METHODS = {"iterdir", "glob", "rglob"}


def _tainted_names(tree: ast.Module) -> Set[str]:
    """Names assigned from a set-valued expression anywhere in the file."""
    tainted: Set[str] = set()
    for node in ast.walk(tree):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and value is not None
            and _is_set_expr(value, tainted)
        ):
            tainted.add(target.id)
    return tainted


def _is_set_expr(node: ast.AST, tainted: Set[str]) -> bool:
    """Whether *node* is syntactically a set-valued expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, tainted)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, tainted) or _is_set_expr(node.right, tainted)
    return False


class SetIterationRule(Rule):
    """DET105: iteration over a set in simulation/serialization code."""

    id = "DET105"
    title = "set-order iteration"
    severity = "error"
    hint = (
        "set order depends on per-process string hashing "
        "(PYTHONHASHSEED) — wrap the set in sorted(...) with a stable "
        "key before its order can reach simulation state or "
        "serialized output"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        tainted = _tainted_names(src.tree)
        for node in ast.walk(src.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                # A set built *from* a set is order-free (SetComp is
                # skipped), and a comprehension consumed whole by an
                # order-insensitive reduction (min/sum/any/...) cannot
                # leak its iteration order.
                if not self._feeds_order_free_consumer(node, src):
                    iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate")
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it, tainted):
                    yield it, (
                        "iteration over a set — order varies with "
                        "PYTHONHASHSEED across processes"
                    )

    @staticmethod
    def _feeds_order_free_consumer(node: ast.AST, src: SourceFile) -> bool:
        parent = src.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_FREE_CONSUMERS
            and node in parent.args
        )


class FilesystemOrderRule(Rule):
    """DET109: directory-order filesystem enumeration."""

    id = "DET109"
    title = "unsorted filesystem enumeration"
    severity = "warning"
    hint = (
        "directory order differs between filesystems and machines; "
        "wrap the enumeration in sorted(...) before it can influence "
        "output or processing order"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = src.resolve(node.func)
            is_fs = origin in _FS_ORIGINS or (
                isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHODS
            )
            if not is_fs or self._order_insensitive_context(node, src):
                continue
            name = ".".join(origin) if origin else node.func.attr  # type: ignore[union-attr]
            yield node, f"{name}() yields entries in directory order"

    @staticmethod
    def _order_insensitive_context(node: ast.AST, src: SourceFile) -> bool:
        """Directly sorted, or iterated only inside an order-free reduction."""
        parent = src.parent(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_FREE_CONSUMERS
        ):
            return True
        # `sum(1 for p in root.glob(...))` — the enumeration is the
        # source of a comprehension whose whole value feeds an
        # order-insensitive reduction.
        if isinstance(parent, ast.comprehension):
            comp = src.parent(parent)
            consumer = src.parent(comp) if comp is not None else None
            return (
                isinstance(comp, (ast.GeneratorExp, ast.ListComp, ast.SetComp))
                and isinstance(consumer, ast.Call)
                and isinstance(consumer.func, ast.Name)
                and consumer.func.id in _ORDER_FREE_CONSUMERS
            )
        return False
