"""DET108/DET110 — state smuggled past the (config, seed) contract.

A mutable default argument is evaluated once at import and shared by
every call: state from one run leaks into the next, so two "identical"
experiments diverge.  Environment reads make a run depend on the shell
that launched it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


class MutableDefaultRule(Rule):
    """DET108: mutable default argument."""

    id = "DET108"
    title = "mutable default argument"
    severity = "error"
    hint = (
        "a mutable default is shared across calls and across runs in "
        "the same process — default to None and build the container "
        "inside the function (or use dataclasses.field(default_factory))"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield default, (
                        f"function {node.name!r} has a mutable default "
                        "argument shared across calls"
                    )


class EnvironmentReadRule(Rule):
    """DET110: environment/argv read inside the simulation layer."""

    id = "DET110"
    title = "environment read in simulation code"
    severity = "warning"
    sim_only = True
    hint = (
        "simulation behaviour must be a function of (config, seed), "
        "not of the launching shell; read the environment at the CLI "
        "boundary and pass the value through ExperimentConfig"
    )

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                origin = src.resolve(node.func)
                if origin == ("os", "getenv"):
                    yield node, "os.getenv() read in simulation code"
                continue
            if isinstance(node, ast.Attribute):
                origin = src.resolve(node)
                if origin == ("os", "environ"):
                    yield node, "os.environ read in simulation code"
                elif origin == ("sys", "argv"):
                    yield node, "sys.argv read in simulation code"
