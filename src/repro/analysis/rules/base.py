"""Shared machinery for determinism lint rules.

A rule is a small object with an ID, a severity, a fix hint and a
``check`` method that yields ``(node, message)`` pairs for one parsed
source file.  Rules never mutate the tree and never read anything but
the :class:`SourceFile` they are given, so the linter can run them in
any order with identical results.

The helpers here do the unglamorous work every rule needs: resolving
dotted call chains through import aliases (``import numpy as np``
makes ``np.random.random`` resolve to ``numpy.random.random``) and
mapping nodes to their parents (to recognise e.g. a ``glob`` call
that is already wrapped in ``sorted(...)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.config import AnalysisConfig


def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """The dotted-name chain of a Name/Attribute expression.

    ``datetime.datetime.now`` yields ``("datetime", "datetime",
    "now")``; anything rooted in a non-name expression (a call, a
    subscript) yields the resolvable tail only.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def build_import_map(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Map local aliases to the dotted origins they import.

    ``import time as t`` maps ``t`` to ``("time",)``; ``from random
    import random as r`` maps ``r`` to ``("random", "random")``.
    """
    imports: Dict[str, Tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origin = tuple(alias.name.split("."))
                local = alias.asname or origin[0]
                imports[local] = origin if alias.asname else origin[:1]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            base = tuple(node.module.split("."))
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = base + (alias.name,)
    return imports


@dataclass
class SourceFile:
    """One parsed file plus everything rules need to judge it."""

    path: Path
    posix: str
    text: str
    tree: ast.Module
    config: AnalysisConfig
    is_sim: bool
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    _parents: Optional[Dict[int, ast.AST]] = None

    @classmethod
    def parse(cls, path: Path, text: str, config: AnalysisConfig) -> "SourceFile":
        """Parse *text* and precompute the import-alias map."""
        tree = ast.parse(text, filename=str(path))
        posix = path.as_posix()
        src = cls(
            path=path,
            posix=posix,
            text=text,
            tree=tree,
            config=config,
            is_sim=config.is_sim_path(posix),
        )
        src.imports = build_import_map(tree)
        return src

    def resolve(self, func: ast.AST) -> Tuple[str, ...]:
        """Dotted origin of a callable expression, through imports."""
        chain = attr_chain(func)
        if chain and chain[0] in self.imports:
            return self.imports[chain[0]] + chain[1:]
        return chain

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of *node* (None for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    # Keyed by object identity: AST nodes are unique
                    # per position, unlike their (line, col) pairs.
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))


class Rule:
    """Base class: one determinism hazard pattern.

    Subclasses set the class attributes and implement :meth:`check`.
    ``sim_only`` rules run only on files under the configured
    ``sim-paths``; ``clock_rule`` rules honour ``wallclock-allow``.
    """

    id: str = "DET000"
    title: str = ""
    severity: str = "error"
    hint: str = ""
    sim_only: bool = False
    clock_rule: bool = False

    def check(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for every violation in *src*."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the signature a generator

    def applies_to(self, src: SourceFile) -> bool:
        """Whether this rule runs on *src* at all."""
        if self.sim_only and not src.is_sim:
            return False
        if self.clock_rule and src.config.is_wallclock_allowed(src.posix):
            return False
        return True
