"""Feitelson's Standard Workload Format (SWF).

The paper's workload trace files "follow the specification proposed by
Feitelson" — the Standard Workload Format used by the parallel
workloads archive.  An SWF file holds one job per line with 18
whitespace-separated fields; header lines start with ``;``.

This module reads and writes SWF, and converts between SWF records
and our :class:`~repro.qs.job.Job` objects.  Unknown values are -1,
as the specification requires.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, TextIO, Union

from repro.apps.application import ApplicationSpec
from repro.qs.job import Job

#: Field names, in SWF column order.
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_procs",
    "avg_cpu_time",
    "used_memory",
    "requested_procs",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)


@dataclass
class SwfJob:
    """One SWF record; field semantics follow the specification."""

    job_number: int
    submit_time: float
    wait_time: float = -1
    run_time: float = -1
    allocated_procs: int = -1
    avg_cpu_time: float = -1
    used_memory: int = -1
    requested_procs: int = -1
    requested_time: float = -1
    requested_memory: int = -1
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1

    def to_line(self) -> str:
        """Serialise as one SWF data line."""
        values = []
        for name in SWF_FIELDS:
            value = getattr(self, name)
            if isinstance(value, float):
                values.append(f"{value:.2f}".rstrip("0").rstrip("."))
            else:
                values.append(str(value))
        return " ".join(values)

    @classmethod
    def from_line(cls, line: str) -> "SwfJob":
        """Parse one SWF data line.

        Raises
        ------
        ValueError
            On a malformed line (wrong field count or non-numeric
            fields).
        """
        parts = line.split()
        if len(parts) != len(SWF_FIELDS):
            raise ValueError(
                f"SWF line has {len(parts)} fields, expected {len(SWF_FIELDS)}: {line!r}"
            )
        kwargs = {}
        int_fields = {
            "job_number", "allocated_procs", "used_memory", "requested_procs",
            "requested_memory", "status", "user_id", "group_id", "executable",
            "queue", "partition", "preceding_job",
        }
        for name, raw in zip(SWF_FIELDS, parts):
            if name in int_fields:
                kwargs[name] = int(float(raw))
            else:
                kwargs[name] = float(raw)
        return cls(**kwargs)


def parse_swf(source: Union[str, TextIO]) -> List[SwfJob]:
    """Parse SWF text (or a file-like object) into records.

    Header/comment lines (starting with ``;``) and blank lines are
    skipped.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    records = []
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            continue
        try:
            records.append(SwfJob.from_line(stripped))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return records


def write_swf(
    records: Iterable[SwfJob],
    header: Optional[Dict[str, str]] = None,
) -> str:
    """Serialise records to SWF text with optional header comments."""
    lines = []
    for key, value in (header or {}).items():
        lines.append(f"; {key}: {value}")
    for record in records:
        lines.append(record.to_line())
    return "\n".join(lines) + "\n"


def jobs_to_swf(
    jobs: Iterable[Job],
    app_numbers: Optional[Dict[str, int]] = None,
) -> List[SwfJob]:
    """Convert scheduler jobs to SWF records.

    ``app_numbers`` maps application names to SWF executable numbers;
    one is built on the fly when omitted.  Completed jobs carry their
    measured wait/run times; queued jobs use -1 as the spec requires.
    """
    numbers: Dict[str, int] = dict(app_numbers or {})
    records = []
    for job in jobs:
        if job.app_name not in numbers:
            numbers[job.app_name] = len(numbers) + 1
        wait = job.wait_time
        run = job.execution_time
        records.append(
            SwfJob(
                job_number=job.job_id,
                submit_time=job.submit_time,
                wait_time=wait if wait is not None else -1,
                run_time=run if run is not None else -1,
                allocated_procs=-1,
                requested_procs=job.request if job.request is not None else -1,
                status=1 if run is not None else -1,
                executable=numbers[job.app_name],
            )
        )
    return records


def jobs_from_swf(
    records: Iterable[SwfJob],
    executables: Dict[int, ApplicationSpec],
) -> List[Job]:
    """Rebuild scheduler jobs from SWF records.

    Parameters
    ----------
    records:
        Parsed SWF records.
    executables:
        Mapping of SWF executable numbers to application specs.

    Raises
    ------
    KeyError
        If a record references an unknown executable number.
    """
    jobs = []
    for record in records:
        if record.executable not in executables:
            raise KeyError(
                f"job {record.job_number}: unknown executable {record.executable}"
            )
        spec = executables[record.executable]
        request = record.requested_procs if record.requested_procs > 0 else None
        jobs.append(
            Job(
                job_id=record.job_number,
                spec=spec,
                submit_time=record.submit_time,
                request=request,
            )
        )
    return jobs
