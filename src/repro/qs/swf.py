"""Feitelson's Standard Workload Format (SWF).

The paper's workload trace files "follow the specification proposed by
Feitelson" — the Standard Workload Format used by the parallel
workloads archive.  An SWF file holds one job per line with 18
whitespace-separated fields; header lines start with ``;``.

This module reads and writes SWF, and converts between SWF records
and our :class:`~repro.qs.job.Job` objects.  Unknown values are -1,
as the specification requires.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.apps.application import ApplicationSpec
from repro.qs.job import Job

#: Field names, in SWF column order.
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_procs",
    "avg_cpu_time",
    "used_memory",
    "requested_procs",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)


@dataclass
class SwfJob:
    """One SWF record; field semantics follow the specification."""

    job_number: int
    submit_time: float
    wait_time: float = -1
    run_time: float = -1
    allocated_procs: int = -1
    avg_cpu_time: float = -1
    used_memory: int = -1
    requested_procs: int = -1
    requested_time: float = -1
    requested_memory: int = -1
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1

    def to_line(self) -> str:
        """Serialise as one SWF data line."""
        values = []
        for name in SWF_FIELDS:
            value = getattr(self, name)
            if isinstance(value, float):
                values.append(f"{value:.2f}".rstrip("0").rstrip("."))
            else:
                values.append(str(value))
        return " ".join(values)

    @classmethod
    def from_line(cls, line: str) -> "SwfJob":
        """Parse one SWF data line.

        Raises
        ------
        ValueError
            On a malformed line (wrong field count or non-numeric
            fields).
        """
        parts = line.split()
        if len(parts) != len(SWF_FIELDS):
            raise ValueError(
                f"SWF line has {len(parts)} fields, expected {len(SWF_FIELDS)}: {line!r}"
            )
        kwargs = {}
        int_fields = {
            "job_number", "allocated_procs", "used_memory", "requested_procs",
            "requested_memory", "status", "user_id", "group_id", "executable",
            "queue", "partition", "preceding_job",
        }
        for name, raw in zip(SWF_FIELDS, parts):
            if name in int_fields:
                kwargs[name] = int(float(raw))
            else:
                kwargs[name] = float(raw)
        return cls(**kwargs)


@dataclass
class SwfParseStats:
    """Skip-with-count bookkeeping for dirty real-world SWF logs.

    Archive logs routinely contain comment banners, truncated lines,
    bogus negative runtimes and submit times that go backwards.  In
    lenient mode the parser skips (or repairs) those and counts each
    class here, so a caller can report honestly what it dropped; in
    strict mode the first anomaly raises instead.
    """

    lines: int = 0
    records: int = 0
    comments: int = 0
    blank: int = 0
    malformed: int = 0
    negative_runtime: int = 0
    out_of_order: int = 0
    #: line numbers of the first few anomalies, for error reporting
    anomaly_lines: List[int] = field(default_factory=list)
    _ANOMALY_SAMPLE = 8

    @property
    def skipped(self) -> int:
        """Records dropped (malformed + bogus negative runtimes)."""
        return self.malformed + self.negative_runtime

    def note_anomaly(self, lineno: int) -> None:
        if len(self.anomaly_lines) < self._ANOMALY_SAMPLE:
            self.anomaly_lines.append(lineno)

    def summary_line(self) -> str:
        return (
            f"{self.records} records, {self.comments} comments, "
            f"{self.malformed} malformed, {self.negative_runtime} negative-runtime, "
            f"{self.out_of_order} out-of-order"
        )


def iter_swf(
    source: Union[str, TextIO],
    strict: bool = True,
    stats: Optional[SwfParseStats] = None,
) -> Iterator[SwfJob]:
    """Stream SWF records one line at a time (constant memory).

    Header/comment lines (``;`` per the spec, plus ``#`` which dirty
    logs use) and blank lines are always skipped.  ``strict=True``
    raises :class:`ValueError` on the first malformed line or bogus
    negative runtime; ``strict=False`` skips them, counting each class
    in *stats*.  A runtime of exactly -1 is the spec's legal "unknown"
    and is never treated as an anomaly.  Submit-time ordering is not
    enforced here (a stream cannot be sorted); see :func:`parse_swf`.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    stats = stats if stats is not None else SwfParseStats()
    for lineno, line in enumerate(source, start=1):
        stats.lines += 1
        stripped = line.strip()
        if not stripped:
            stats.blank += 1
            continue
        if stripped.startswith(";") or stripped.startswith("#"):
            stats.comments += 1
            continue
        try:
            record = SwfJob.from_line(stripped)
        except ValueError as exc:
            if strict:
                raise ValueError(f"line {lineno}: {exc}") from exc
            stats.malformed += 1
            stats.note_anomaly(lineno)
            continue
        if record.run_time < 0 and record.run_time != -1:  # repro: allow(DET106): -1 is the SWF spec's literal "unknown" sentinel parsed from the file, not a computed timestamp
            if strict:
                raise ValueError(
                    f"line {lineno}: negative run_time {record.run_time} "
                    f"(only -1 may mark an unknown runtime)"
                )
            stats.negative_runtime += 1
            stats.note_anomaly(lineno)
            continue
        stats.records += 1
        yield record


def parse_swf(
    source: Union[str, TextIO],
    strict: bool = True,
    stats: Optional[SwfParseStats] = None,
) -> List[SwfJob]:
    """Parse SWF text (or a file-like object) into records.

    Header/comment lines and blank lines are skipped.  In strict mode
    (the default) the first malformed line, bogus negative runtime or
    backwards submit time raises :class:`ValueError`; in lenient mode
    malformed/negative-runtime records are skipped, out-of-order
    records are stably re-sorted by ``(submit_time, job_number)``, and
    every repair is counted in *stats* (pass a
    :class:`SwfParseStats` to read them back).
    """
    stats = stats if stats is not None else SwfParseStats()
    records = list(iter_swf(source, strict=strict, stats=stats))
    last_submit: Optional[float] = None
    for record in records:
        if last_submit is not None and record.submit_time < last_submit:
            if strict:
                raise ValueError(
                    f"job {record.job_number}: submit_time {record.submit_time} "
                    f"goes backwards (previous {last_submit})"
                )
            stats.out_of_order += 1
        else:
            last_submit = record.submit_time
    if stats.out_of_order:
        records.sort(key=lambda r: (r.submit_time, r.job_number))
    return records


def write_swf(
    records: Iterable[SwfJob],
    header: Optional[Dict[str, str]] = None,
) -> str:
    """Serialise records to SWF text with optional header comments."""
    lines = []
    for key, value in (header or {}).items():
        lines.append(f"; {key}: {value}")
    for record in records:
        lines.append(record.to_line())
    return "\n".join(lines) + "\n"


def jobs_to_swf(
    jobs: Iterable[Job],
    app_numbers: Optional[Dict[str, int]] = None,
) -> List[SwfJob]:
    """Convert scheduler jobs to SWF records.

    ``app_numbers`` maps application names to SWF executable numbers;
    one is built on the fly when omitted.  Completed jobs carry their
    measured wait/run times; queued jobs use -1 as the spec requires.
    """
    numbers: Dict[str, int] = dict(app_numbers or {})
    records = []
    for job in jobs:
        if job.app_name not in numbers:
            numbers[job.app_name] = len(numbers) + 1
        wait = job.wait_time
        run = job.execution_time
        records.append(
            SwfJob(
                job_number=job.job_id,
                submit_time=job.submit_time,
                wait_time=wait if wait is not None else -1,
                run_time=run if run is not None else -1,
                allocated_procs=-1,
                requested_procs=job.request if job.request is not None else -1,
                status=1 if run is not None else -1,
                executable=numbers[job.app_name],
            )
        )
    return records


def jobs_from_swf(
    records: Iterable[SwfJob],
    executables: Dict[int, ApplicationSpec],
) -> List[Job]:
    """Rebuild scheduler jobs from SWF records.

    Parameters
    ----------
    records:
        Parsed SWF records.
    executables:
        Mapping of SWF executable numbers to application specs.

    Raises
    ------
    KeyError
        If a record references an unknown executable number.
    """
    jobs = []
    for record in records:
        if record.executable not in executables:
            raise KeyError(
                f"job {record.job_number}: unknown executable {record.executable}"
            )
        spec = executables[record.executable]
        request = record.requested_procs if record.requested_procs > 0 else None
        jobs.append(
            Job(
                job_id=record.job_number,
                spec=spec,
                submit_time=record.submit_time,
                request=request,
            )
        )
    return jobs
