"""EASY backfilling — the classic queue-side answer to fragmentation.

The paper's §4.3 rejects fixed-partition batch scheduling because of
fragmentation.  The standard mitigation in production batch systems is
*EASY backfilling* (Lifka, 1995): when the head of the FCFS queue does
not fit, a later job may jump ahead **iff** starting it now does not
delay the head's earliest possible start (its *reservation*), computed
from the running jobs' estimated completion times.

Included as an extension so that the coordination ablations can pit
PDPA against a competent traditional scheduler rather than a strawman:
backfilling recovers some of the fragmentation loss, but it cannot
shrink a running job, so a malleable coordinated policy still wins on
workloads with poorly scaling codes.

Runtime estimates use each job's ideal execution time at its request —
the analogue of (honest) user-provided wall-time estimates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.trace import TraceRecorder
from repro.qs.job import Job
from repro.qs.queuing import NanosQS
from repro.rm.manager import SpaceSharedResourceManager
from repro.sim.engine import Simulator


def estimated_runtime(job: Job) -> float:
    """User-style wall-time estimate: ideal time at the full request."""
    assert job.request is not None
    return job.spec.execution_time(job.request)


class BackfillQS(NanosQS):
    """FCFS queue with EASY backfilling for rigid space sharing.

    Requires a :class:`SpaceSharedResourceManager`; the reservation
    computation reads the running jobs' allocations through it.
    """

    def __init__(
        self,
        sim: Simulator,
        rm: SpaceSharedResourceManager,
        jobs: List[Job],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not isinstance(rm, SpaceSharedResourceManager):
            raise TypeError("EASY backfilling needs a space-shared manager")
        super().__init__(sim, rm, jobs, trace)
        #: number of jobs started out of FCFS order (diagnostics)
        self.backfilled_jobs = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def try_start(self) -> None:  # noqa: D102 - see NanosQS
        if self._in_try_start:
            return
        self._in_try_start = True
        try:
            progress = True
            while progress and self.queue:
                progress = False
                head = self.queue[0]
                if self.rm.can_admit(len(self.queue), head_request=head.request):
                    self.queue.pop(0)
                    self.rm.start_job(head)
                    self._sample_mpl()
                    progress = True
                    continue
                backfilled = self._try_backfill()
                if backfilled is not None:
                    self.queue.remove(backfilled)
                    self.rm.start_job(backfilled)
                    self.backfilled_jobs += 1
                    self._sample_mpl()
                    progress = True
        finally:
            self._in_try_start = False

    def _try_backfill(self) -> Optional[Job]:
        """Find a queued job that can start without delaying the head."""
        head = self.queue[0]
        assert head.request is not None
        view = self.rm.system_view()
        free_now = view.free_cpus
        shadow_time, spare_at_shadow = self._reservation(head.request, free_now, view)
        if shadow_time is None:
            return None
        for candidate in self.queue[1:]:
            assert candidate.request is not None
            if candidate.request > free_now:
                continue
            finishes_before_shadow = (
                self.sim.now + estimated_runtime(candidate) <= shadow_time + 1e-9
            )
            fits_in_spare = candidate.request <= spare_at_shadow
            if finishes_before_shadow or fits_in_spare:
                return candidate
        return None

    def _reservation(self, needed: int, free_now: int, view):
        """Earliest time *needed* CPUs are free, and the spare CPUs then.

        Walks the running jobs in estimated-completion order,
        accumulating released processors.
        """
        if needed <= free_now:
            return self.sim.now, free_now - needed
        releases = []
        for job_view in view.jobs.values():
            job = job_view.job
            assert job.start_time is not None
            completion = job.start_time + estimated_runtime(job)
            releases.append((max(completion, self.sim.now), job_view.allocation))
        releases.sort()
        free = free_now
        for when, released in releases:
            free += released
            if free >= needed:
                return when, free - needed
        return None, 0
