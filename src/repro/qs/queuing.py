"""The NANOS Queuing System (paper §3.2).

The NANOS QS "is a user-level submission tool.  It implements the job
scheduling policy and interacts with the NANOS Resource Manager to
control the multiprogramming level."  Job selection is FCFS (the
queuing system decides *which* job starts); the *when* is delegated to
the resource manager's admission answer — this is exactly the
coordination split §4.3 proposes.

The QS also records the multiprogramming-level samples from which
Fig. 8 is regenerated, and guarantees repeatability: it replays a
fixed list of jobs with fixed submission times.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.trace import TraceRecorder
from repro.qs.job import Job, JobState
from repro.rm.manager import BaseResourceManager
from repro.sim.engine import Simulator


class NanosQS:
    """FCFS queue coordinated with the resource manager."""

    def __init__(
        self,
        sim: Simulator,
        rm: BaseResourceManager,
        jobs: List[Job],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.rm = rm
        self.jobs = list(jobs)
        self.trace = trace
        self.queue: List[Job] = []
        self.completed: List[Job] = []
        self._in_try_start = False
        rm.on_state_change = self.try_start
        rm.on_job_finished = self._job_finished

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def schedule_submissions(self) -> None:
        """Schedule every job's arrival event on the simulator."""
        for job in self.jobs:
            self.sim.schedule_at(
                job.submit_time,
                self._on_arrival,
                job,
                label=f"submit:{job.job_id}",
            )

    def _on_arrival(self, job: Job) -> None:
        self.queue.append(job)
        self._sample_mpl()
        self.try_start()

    # ------------------------------------------------------------------
    # coordinated admission
    # ------------------------------------------------------------------
    def try_start(self) -> None:
        """Start queued jobs for as long as the RM admits them.

        Re-entrant calls (the RM notifies state changes while we are
        starting a job) are coalesced into the outer loop.
        """
        if self._in_try_start:
            return
        self._in_try_start = True
        try:
            while self.queue and self.rm.can_admit(
                len(self.queue), head_request=self.queue[0].request
            ):
                job = self.queue.pop(0)  # FCFS
                self.rm.start_job(job)
                self._sample_mpl()
        finally:
            self._in_try_start = False

    def _job_finished(self, job: Job) -> None:
        self.completed.append(job)
        self._sample_mpl()
        # rm.on_state_change fires after this callback and retries
        # admission; calling try_start here too is harmless but
        # redundant, so we rely on the state-change hook.

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _sample_mpl(self) -> None:
        if self.trace is not None:
            self.trace.record_mpl(self.sim.now, self.rm.running_count, len(self.queue))

    @property
    def queued_count(self) -> int:
        """Jobs currently waiting in the queue."""
        return len(self.queue)

    @property
    def all_done(self) -> bool:
        """Whether every submitted job has completed."""
        return len(self.completed) == len(self.jobs)

    def unfinished_jobs(self) -> List[Job]:
        """Jobs not yet completed (for end-of-run diagnostics)."""
        return [job for job in self.jobs if job.state is not JobState.DONE]
