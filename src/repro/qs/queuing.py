"""The NANOS Queuing System (paper §3.2).

The NANOS QS "is a user-level submission tool.  It implements the job
scheduling policy and interacts with the NANOS Resource Manager to
control the multiprogramming level."  Job selection is FCFS (the
queuing system decides *which* job starts); the *when* is delegated to
the resource manager's admission answer — this is exactly the
coordination split §4.3 proposes.

The QS also records the multiprogramming-level samples from which
Fig. 8 is regenerated, and guarantees repeatability: it replays a
fixed list of jobs with fixed submission times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.trace import FaultRecord, TraceRecorder
from repro.qs.job import Job, JobState
from repro.rm.manager import BaseResourceManager
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class RetryConfig:
    """Retry policy for jobs killed by faults.

    A killed job re-enters the FCFS queue after a capped exponential
    backoff — immediately resubmitting a job onto a machine that just
    lost capacity only thrashes the admission protocol.  After
    ``max_retries`` killed executions the job is declared FAILED.
    """

    max_retries: int = 3
    backoff_base: float = 5.0
    backoff_cap: float = 60.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_base * 2.0 ** (attempt - 1), self.backoff_cap)


class NanosQS:
    """FCFS queue coordinated with the resource manager."""

    def __init__(
        self,
        sim: Simulator,
        rm: BaseResourceManager,
        jobs: List[Job],
        trace: Optional[TraceRecorder] = None,
        retry: Optional[RetryConfig] = None,
    ) -> None:
        self.sim = sim
        self.rm = rm
        self.jobs = list(jobs)
        self.trace = trace
        self.retry = retry or RetryConfig()
        self.queue: List[Job] = []
        self.completed: List[Job] = []
        self.failed: List[Job] = []
        self.requeue_count = 0
        self._in_try_start = False
        rm.on_state_change = self.try_start
        rm.on_job_finished = self._job_finished
        rm.on_job_killed = self._job_killed

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def schedule_submissions(self) -> None:
        """Schedule every job's arrival event on the simulator."""
        for job in self.jobs:
            # repro: allow(CONC301): event-channel send — schedule_at is the LP event interface; becomes a channel message under the PARSIR cut (docs/lp-boundary-audit.md)
            self.sim.schedule_at(
                job.submit_time,
                self._on_arrival,
                job,
                label=f"submit:{job.job_id}",
            )

    def submit(self, job: Job) -> None:
        """Dynamically submit one more job (fuzzing / interactive use).

        Registers the job and schedules its arrival exactly as
        :meth:`schedule_submissions` does for the static list.  The
        job's ``submit_time`` must not lie in the simulated past, and
        its id must be unique — the accounting invariants (one job,
        one terminal state) rely on ids as identity.
        """
        if any(existing.job_id == job.job_id for existing in self.jobs):
            raise ValueError(f"duplicate job id {job.job_id}")
        self.jobs.append(job)
        # repro: allow(CONC301): event-channel send — schedule_at is the LP event interface; becomes a channel message under the PARSIR cut (docs/lp-boundary-audit.md)
        self.sim.schedule_at(
            job.submit_time,
            self._on_arrival,
            job,
            label=f"submit:{job.job_id}",
        )

    def _on_arrival(self, job: Job) -> None:
        self.queue.append(job)
        self._sample_mpl()
        self.try_start()

    # ------------------------------------------------------------------
    # coordinated admission
    # ------------------------------------------------------------------
    def try_start(self) -> None:
        """Start queued jobs for as long as the RM admits them.

        Re-entrant calls (the RM notifies state changes while we are
        starting a job) are coalesced into the outer loop.
        """
        if self._in_try_start:
            return
        self._in_try_start = True
        try:
            while self.queue and self.rm.can_admit(
                len(self.queue), head_request=self.queue[0].request
            ):
                job = self.queue.pop(0)  # FCFS
                self.rm.start_job(job)
                self._sample_mpl()
        finally:
            self._in_try_start = False

    def _job_finished(self, job: Job) -> None:
        self.completed.append(job)
        self._sample_mpl()
        # rm.on_state_change fires after this callback and retries
        # admission; calling try_start here too is harmless but
        # redundant, so we rely on the state-change hook.

    # ------------------------------------------------------------------
    # fault recovery: retry with capped exponential backoff
    # ------------------------------------------------------------------
    def _job_killed(self, job: Job, reason: str) -> None:
        """RM hook: *job*'s execution was torn down by a fault."""
        now = self.sim.now
        if job.attempts >= self.retry.max_retries:
            job.mark_failed(now)
            self.failed.append(job)
            if self.trace is not None:
                self.trace.record_fault(FaultRecord(
                    now, "job_failed", job.job_id,
                    detail=f"{reason} (after {job.attempts} killed runs)",
                ))
            self._sample_mpl()
            return
        job.mark_requeued(now)
        delay = self.retry.delay(job.attempts)
        self.requeue_count += 1
        if self.trace is not None:
            self.trace.record_fault(FaultRecord(
                now, "job_requeue", job.job_id, detail=reason, value=delay,
            ))
        # repro: allow(CONC301): event-channel send — schedule_after is the LP event interface; becomes a channel message under the PARSIR cut (docs/lp-boundary-audit.md)
        self.sim.schedule_after(
            delay, self._on_requeue, job, label=f"requeue:{job.job_id}"
        )
        self._sample_mpl()

    def _on_requeue(self, job: Job) -> None:
        """Backoff expired: the job rejoins the FCFS queue."""
        self.queue.append(job)
        self._sample_mpl()
        self.try_start()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _sample_mpl(self) -> None:
        if self.trace is not None:
            self.trace.record_mpl(self.sim.now, self.rm.running_count, len(self.queue))

    @property
    def queued_count(self) -> int:
        """Jobs currently waiting in the queue."""
        return len(self.queue)

    @property
    def all_done(self) -> bool:
        """Whether every submitted job reached a terminal state."""
        return len(self.completed) + len(self.failed) == len(self.jobs)

    def unfinished_jobs(self) -> List[Job]:
        """Jobs not yet terminal (for end-of-run diagnostics)."""
        return [
            job for job in self.jobs
            if job.state not in (JobState.DONE, JobState.FAILED)
        ]
