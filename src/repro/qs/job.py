"""The job abstraction shared by the queuing system and the scheduler.

A job is one submission of an application: the application's static
spec, the processor request the user tuned (or did not tune), the
submission time from the workload trace, and the lifecycle timestamps
from which the paper's two headline metrics derive:

* **execution time** — start of execution to completion,
* **response time** — submission to completion ("the period of time
  that starts when the application is submitted and finishes when the
  application completes"); this includes queue waiting time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.apps.application import ApplicationSpec


class JobState(enum.Enum):
    """Lifecycle of a job inside the queuing system.

    ``FAILED`` is terminal: the job was killed (crash, hang, or the
    fault of a resource it ran on) more times than the retry budget
    allows.  A requeued job goes back to ``QUEUED``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One submitted instance of an application."""

    job_id: int
    spec: ApplicationSpec
    submit_time: float
    #: processors requested at submission (defaults to the spec's tuning)
    request: Optional[int] = None
    state: JobState = JobState.QUEUED
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: number of executions that were killed by a fault (0 = clean run)
    attempts: int = 0
    #: time of the *first* start; ``start_time`` tracks the latest one
    first_start_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.request is None:
            self.request = self.spec.default_request
        if self.request < 1:
            raise ValueError(f"job {self.job_id}: request must be >= 1")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: submit_time must be >= 0")

    @property
    def app_name(self) -> str:
        """Name of the application this job runs."""
        return self.spec.name

    def mark_started(self, now: float) -> None:
        """Transition QUEUED -> RUNNING at time *now*."""
        if self.state is not JobState.QUEUED:
            raise RuntimeError(f"job {self.job_id}: started twice")
        if now < self.submit_time - 1e-9:
            raise RuntimeError(f"job {self.job_id}: started before submission")
        self.state = JobState.RUNNING
        self.start_time = now
        if self.first_start_time is None:
            self.first_start_time = now

    def mark_finished(self, now: float) -> None:
        """Transition RUNNING -> DONE at time *now*."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id}: finished while {self.state}")
        self.state = JobState.DONE
        self.end_time = now

    def mark_requeued(self, now: float) -> None:
        """Transition RUNNING -> QUEUED after a fault killed this run.

        The job keeps its original ``submit_time`` (response time spans
        every attempt) and its ``first_start_time``; all execution
        progress is lost.
        """
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id}: requeued while {self.state}")
        self.state = JobState.QUEUED
        self.attempts += 1

    def mark_failed(self, now: float) -> None:
        """Terminal transition to FAILED (retry budget exhausted)."""
        if self.state in (JobState.DONE, JobState.FAILED):
            raise RuntimeError(f"job {self.job_id}: failed while {self.state}")
        if self.state is JobState.RUNNING:
            self.attempts += 1
        self.state = JobState.FAILED
        self.end_time = now

    @property
    def wait_time(self) -> Optional[float]:
        """Queue waiting time (submission to start), if started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def execution_time(self) -> Optional[float]:
        """Start-to-completion time, if completed."""
        if self.end_time is None or self.start_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def response_time(self) -> Optional[float]:
        """Submission-to-completion time, if completed."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time
