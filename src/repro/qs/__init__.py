"""The NANOS Queuing System and workload tooling.

* :mod:`repro.qs.job` — the job abstraction shared by all layers.
* :mod:`repro.qs.queuing` — the user-level submission tool: FCFS job
  queue, repeatable submission of workload traces, multiprogramming
  level enforced in coordination with the resource manager.
* :mod:`repro.qs.workload` — workload generation following the paper:
  Poisson arrivals over 300 seconds at an estimated processor demand
  of 60/80/100% of machine capacity, mixes from Table 1.
* :mod:`repro.qs.swf` — reader/writer for Feitelson's Standard
  Workload Format, the trace file format the paper's workloads use;
  the lenient incremental reader (:func:`iter_swf`) survives dirty
  archive logs with skip-with-count accounting.
* :mod:`repro.qs.streaming` — the open-system queue: bounded ingress
  with deterministic shedding, fold-on-completion metrics, terminal
  jobs pruned so memory stays O(live jobs).
"""

from repro.qs.job import Job, JobState
from repro.qs.queuing import NanosQS, RetryConfig
from repro.qs.backfill import BackfillQS
from repro.qs.streaming import SHED_POLICIES, IngressConfig, StreamingQS
from repro.qs.swf import SwfJob, SwfParseStats, iter_swf, parse_swf, write_swf
from repro.qs.workload import (
    TABLE1_MIXES,
    WorkloadMix,
    estimate_demand,
    generate_workload,
)

__all__ = [
    "Job",
    "JobState",
    "NanosQS",
    "RetryConfig",
    "BackfillQS",
    "SwfJob",
    "SwfParseStats",
    "iter_swf",
    "parse_swf",
    "write_swf",
    "SHED_POLICIES",
    "IngressConfig",
    "StreamingQS",
    "WorkloadMix",
    "TABLE1_MIXES",
    "estimate_demand",
    "generate_workload",
]
