"""Open-system variant of the NANOS QS: bounded ingress, bounded memory.

The closed-system :class:`~repro.qs.queuing.NanosQS` replays a fixed
job list and keeps every :class:`~repro.qs.job.Job` alive for the
final summary.  A long-lived streaming service needs the opposite
discipline:

* **bounded ingress** — the FCFS queue has a configurable cap and a
  deterministic shedding policy (``reject`` the newcomer,
  ``drop-oldest`` from the queue head, or ``block`` the generator —
  flow control exerted by the arrival pump, not the queue).  The cap
  governs *admissions*: a killed job's retry re-enters the queue
  without passing admission control (already-admitted work is never
  shed on retry), so the raw backlog may transiently exceed the cap
  by in-flight retries — the validated invariant is
  ``backlog <= cap + total retry re-entries``, which degenerates to
  the strict cap in retry-free runs;
* **bounded memory** — terminal jobs are folded into
  :class:`~repro.metrics.streaming.StreamingStats` the moment they
  finish and their objects (plus their per-job RNG noise streams) are
  pruned afterwards, so the working set is O(queue + running), never
  O(jobs ever processed);
* **overload honesty** — submissions, admissions, sheds, deferrals and
  completions are counted such that
  ``submitted == admitted + shed`` and
  ``admitted == queued + running + backoff + completed + failed``
  hold at every instant (``repro.validate.validate_stream``).

Overload is detected from backlog versus *healthy* capacity — the
fault-aware ``effective_cpus`` the resource managers already maintain
— so a machine that lost CPUs to faults trips the overload signal
earlier, exactly as it should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.metrics.stats import JobRecord
from repro.metrics.streaming import StreamingStats
from repro.metrics.trace import TraceRecorder
from repro.qs.job import Job, JobState
from repro.qs.queuing import NanosQS, RetryConfig
from repro.rm.manager import BaseResourceManager
from repro.sim.engine import Simulator

__all__ = ["SHED_POLICIES", "IngressConfig", "StreamingQS"]

#: Deterministic load-shedding policies for a full ingress queue.
SHED_POLICIES = ("reject", "drop-oldest", "block")

#: ``offer`` outcomes.
ADMITTED = "admitted"
SHED = "shed"
BLOCKED = "blocked"


@dataclass(frozen=True)
class IngressConfig:
    """Admission-control knobs for the streaming queue.

    Attributes
    ----------
    max_queue:
        Ingress queue bound; 0 means unbounded (no shedding ever).
    policy:
        What to do when the queue is full: ``reject`` sheds the
        arriving job, ``drop-oldest`` evicts the queue head to make
        room, ``block`` tells the arrival pump to stop drawing from
        the generator until capacity frees up.
    overload_factor:
        The service is *overloaded* when the backlog exceeds
        ``overload_factor × effective_cpus`` (healthy capacity, so
        faults tighten the threshold).
    """

    max_queue: int = 0
    policy: str = "reject"
    overload_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.policy!r}; pick one of {SHED_POLICIES}"
            )
        if self.overload_factor <= 0:
            raise ValueError("overload_factor must be positive")


class StreamingQS(NanosQS):
    """FCFS queue with bounded ingress and fold-on-completion metrics."""

    def __init__(
        self,
        sim: Simulator,
        rm: BaseResourceManager,
        trace: Optional[TraceRecorder] = None,
        retry: Optional[RetryConfig] = None,
        ingress: Optional[IngressConfig] = None,
        stats: Optional[StreamingStats] = None,
    ) -> None:
        super().__init__(sim, rm, [], trace, retry)
        self.ingress = ingress or IngressConfig()
        self.stats = stats if stats is not None else StreamingStats()
        #: highest backlog ever (retry re-entry may push it past the
        #: ingress bound — admitted work is never shed on retry)
        self.peak_queue = 0
        #: killed jobs currently waiting out their retry backoff
        self.backoff_pending = 0
        #: terminal Job objects already pruned (memory accounting only;
        #: the stats counters are the authoritative totals)
        self.pruned_completed = 0
        self.pruned_failed = 0
        self._last_job_id = 0
        #: pump hook: fired when a full queue frees a slot (block policy)
        self.on_capacity_available: Optional[Callable[[], None]] = None
        self._overloaded = False

    # ------------------------------------------------------------------
    # bounded-ingress admission
    # ------------------------------------------------------------------
    @property
    def has_capacity(self) -> bool:
        """Whether the ingress queue can take one more job."""
        return self.ingress.max_queue == 0 or len(self.queue) < self.ingress.max_queue

    def offer(self, job: Job) -> str:
        """Admission-controlled submission at the current sim time.

        Returns ``"admitted"``, ``"shed"`` or ``"blocked"``.  A blocked
        offer takes NO ownership of the job — the caller (the arrival
        pump) holds it and re-offers once :attr:`on_capacity_available`
        fires; blocked offers are not counted as submissions, so
        ``submitted == admitted + shed`` stays exact.
        """
        if job.job_id <= self._last_job_id:
            raise ValueError(
                f"job ids must be strictly increasing: got {job.job_id} "
                f"after {self._last_job_id}"
            )
        if not self.has_capacity:
            if self.ingress.policy == "block":
                return BLOCKED
            self.stats.observe_submit()
            self._last_job_id = job.job_id
            if self.ingress.policy == "reject":
                self.stats.observe_shed("reject")
                self._note_overload()
                return SHED
            # drop-oldest: evict the queue head to make room, then admit
            victim = self.queue.pop(0)
            self._discard_job(victim)
            self.stats.observe_shed("drop-oldest")
            self._admit(job)
            return ADMITTED
        self.stats.observe_submit()
        self._last_job_id = job.job_id
        self._admit(job)
        return ADMITTED

    def _admit(self, job: Job) -> None:
        self.jobs.append(job)
        self.stats.observe_admit()
        self._on_arrival(job)

    def _discard_job(self, victim: Job) -> None:
        """Forget a shed job entirely (it never ran)."""
        self.jobs.remove(victim)
        self._sample_mpl()

    # ------------------------------------------------------------------
    # folds at every lifecycle edge
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        super()._on_arrival(job)
        backlog = len(self.queue)
        if backlog > self.peak_queue:
            self.peak_queue = backlog
        self.stats.sample_backlog(backlog)
        self._note_overload()

    def _job_finished(self, job: Job) -> None:
        super()._job_finished(job)
        self.stats.observe(JobRecord.from_job(job))
        self._notify_capacity()

    def _job_killed(self, job: Job, reason: str) -> None:
        will_fail = job.attempts >= self.retry.max_retries
        super()._job_killed(job, reason)
        if will_fail:
            self.stats.observe_failed(job.submit_time, job.attempts)
            self._notify_capacity()
        else:
            self.backoff_pending += 1
            self.stats.observe_requeue()

    def _on_requeue(self, job: Job) -> None:
        self.backoff_pending -= 1
        super()._on_requeue(job)
        backlog = len(self.queue)
        if backlog > self.peak_queue:
            self.peak_queue = backlog
        self.stats.sample_backlog(backlog)

    def _sample_mpl(self) -> None:
        super()._sample_mpl()
        self.stats.sample_mpl(self.rm.running_count)

    def try_start(self) -> None:
        super().try_start()
        self._notify_capacity()

    def _notify_capacity(self) -> None:
        if self.on_capacity_available is not None and self.has_capacity:
            self.on_capacity_available()

    # ------------------------------------------------------------------
    # overload detection: backlog vs healthy capacity
    # ------------------------------------------------------------------
    @property
    def healthy_capacity(self) -> int:
        """Fault-aware CPU capacity (``effective_cpus`` of the RM)."""
        return int(getattr(self.rm, "effective_cpus", self.rm.n_cpus))

    @property
    def overloaded(self) -> bool:
        """Backlog beyond what healthy capacity can plausibly absorb."""
        threshold = self.ingress.overload_factor * max(1, self.healthy_capacity)
        full = not self.has_capacity
        return full or len(self.queue) > threshold

    def _note_overload(self) -> None:
        """Count rising edges of the overload signal."""
        now_overloaded = self.overloaded
        if now_overloaded and not self._overloaded:
            self.stats.observe_overload()
        self._overloaded = now_overloaded

    # ------------------------------------------------------------------
    # bounded memory: prune terminal jobs after their stats are folded
    # ------------------------------------------------------------------
    def prune_terminal(self, streams: Optional[object] = None) -> int:
        """Drop terminal Job objects (and their RNG noise streams).

        Aggregates were folded at completion time, so pruning is pure
        memory reclamation — it never changes a digest.  Pass the
        session's :class:`~repro.sim.rng.RandomStreams` to also free
        the per-job ``iter-noise:<id>`` substreams.
        """
        pruned = len(self.completed) + len(self.failed)
        for job in self.completed:
            self._discard_streams(streams, job)
        for job in self.failed:
            self._discard_streams(streams, job)
        self.pruned_completed += len(self.completed)
        self.pruned_failed += len(self.failed)
        self.completed.clear()
        self.failed.clear()
        terminal = (JobState.DONE, JobState.FAILED)
        self.jobs = [job for job in self.jobs if job.state not in terminal]
        return pruned

    @staticmethod
    def _discard_streams(streams: Optional[object], job: Job) -> None:
        discard = getattr(streams, "discard", None)
        if discard is not None:
            discard(f"iter-noise:{job.job_id}")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def live_jobs(self) -> int:
        """Jobs admitted but not yet terminal (queue + running + backoff)."""
        return len(self.queue) + self.rm.running_count + self.backoff_pending

    @property
    def all_done(self) -> bool:
        """Every admitted job reached a terminal state."""
        return self.live_jobs == 0

    def unfinished_jobs(self) -> List[Job]:
        terminal = (JobState.DONE, JobState.FAILED)
        return [job for job in self.jobs if job.state not in terminal]
